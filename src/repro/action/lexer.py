"""Tokenizer for the intermediate C dialect.

Handles the paper's notational deviations from C: ``int:16`` width suffixes
(the ``:`` becomes its own token and is consumed by the type parser) and
``B:001011`` binary literals (lexed as one token).  ``0``-prefixed integer
literals are octal, as in the port addresses of Fig. 2b (``0700``, ``0712``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class LexError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


KEYWORDS = {
    "int", "uint", "bool", "void", "enum", "struct", "typedef",
    "if", "else", "while", "return", "true", "false",
}

#: multi-character operators, longest first so maximal munch works
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", ":", "@",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<binary>B:[01]+)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>""" + "|".join(re.escape(op) for op in OPERATORS) + r""")
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str   # 'number', 'name', 'keyword', 'op', 'eof'
    value: str
    line: int
    #: numeric value for number tokens
    number: int = 0
    #: base the literal was written in (2, 8, 10, 16)
    base: int = 10


def tokenize(text: str) -> List[Token]:
    """Tokenize *text*; raises :class:`LexError` on unknown characters."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LexError(f"unexpected character {text[pos]!r}", line)
        value = match.group()
        kind = match.lastgroup or ""
        line += value.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "binary":
            tokens.append(Token("number", value, line,
                                number=int(value[2:], 2), base=2))
        elif kind == "hex":
            tokens.append(Token("number", value, line,
                                number=int(value, 16), base=16))
        elif kind == "number":
            if value.startswith("0") and len(value) > 1:
                # octal, as in the port addresses of Fig. 2b
                tokens.append(Token("number", value, line,
                                    number=int(value, 8), base=8))
            else:
                tokens.append(Token("number", value, line,
                                    number=int(value, 10), base=10))
        elif kind == "name":
            token_kind = "keyword" if value in KEYWORDS else "name"
            tokens.append(Token(token_kind, value, line))
        else:
            tokens.append(Token("op", value, line))
    final_line = tokens[-1].line if tokens else 1
    tokens.append(Token("eof", "", final_line))
    return tokens
