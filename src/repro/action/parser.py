"""Recursive-descent parser for the intermediate C dialect.

Accepts the constructs of Fig. 2b (enum/typedef-struct/port-style globals with
brace initializers) and function definitions with the statement forms used by
transition routines.  Deviations from C, per the paper:

* ``int:16`` / ``uint:4`` exact-width integer types (bare ``int`` = 16 bits);
* ``B:001011`` binary literals;
* ``@bound(N)`` loop annotations in front of ``while`` (the explicit timing
  information the WCET analysis needs when it cannot infer a trip count);
* no pointers, no recursion (rejected later by :mod:`repro.action.check`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.action.ast import (
    ArrayType,
    Assign,
    Binary,
    BinOp,
    BoolLiteral,
    BoolType,
    Call,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    GlobalVar,
    If,
    Index,
    IntLiteral,
    IntType,
    NameRef,
    Param,
    Program,
    Return,
    Stmt,
    StructType,
    Type,
    Unary,
    UnOp,
    VarDecl,
    VoidType,
    While,
)
from repro.action.lexer import Token, tokenize


class ActionParseError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_ASSIGN_OPS = {
    "=": None,
    "+=": BinOp.ADD, "-=": BinOp.SUB, "*=": BinOp.MUL, "/=": BinOp.DIV,
    "%=": BinOp.MOD, "&=": BinOp.AND, "|=": BinOp.OR, "^=": BinOp.XOR,
    "<<=": BinOp.SHL, ">>=": BinOp.SHR,
}

_BINARY_LEVELS = [
    # lowest to highest precedence
    [("||", BinOp.LOR)],
    [("&&", BinOp.LAND)],
    [("|", BinOp.OR)],
    [("^", BinOp.XOR)],
    [("&", BinOp.AND)],
    [("==", BinOp.EQ), ("!=", BinOp.NE)],
    [("<", BinOp.LT), ("<=", BinOp.LE), (">", BinOp.GT), (">=", BinOp.GE)],
    [("<<", BinOp.SHL), (">>", BinOp.SHR)],
    [("+", BinOp.ADD), ("-", BinOp.SUB)],
    [("*", BinOp.MUL), ("/", BinOp.DIV), ("%", BinOp.MOD)],
]

_UNARY_OPS = {"-": UnOp.NEG, "~": UnOp.BNOT, "!": UnOp.LNOT}


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.enums: Dict[str, EnumType] = {}
        self.structs: Dict[str, StructType] = {}
        self.typedefs: Dict[str, Type] = {}
        #: enum member name -> owning enum (members are global constants in C)
        self.enum_members: Dict[str, EnumType] = {}

    # -- token plumbing ----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def take(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, value: str) -> Token:
        token = self.peek()
        if token.value != value:
            raise ActionParseError(
                f"expected {value!r}, got {token.value or 'end of input'!r}",
                token.line)
        return self.take()

    def expect_name(self) -> Token:
        token = self.peek()
        if token.kind != "name":
            raise ActionParseError(
                f"expected identifier, got {token.value!r}", token.line)
        return self.take()

    def expect_number(self) -> Token:
        token = self.peek()
        if token.kind != "number":
            raise ActionParseError(
                f"expected number, got {token.value!r}", token.line)
        return self.take()

    def accept(self, value: str) -> bool:
        if self.peek().value == value:
            self.take()
            return True
        return False

    # -- types ---------------------------------------------------------------
    def at_type(self) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.value in (
                "int", "uint", "bool", "void", "enum", "struct"):
            return True
        return token.kind == "name" and token.value in self.typedefs

    def parse_type(self) -> Type:
        token = self.take()
        base: Type
        if token.value in ("int", "uint"):
            width = 16
            if self.accept(":"):
                width = self.expect_number().number
            base = IntType(width, signed=token.value == "int")
        elif token.value == "bool":
            base = BoolType()
        elif token.value == "void":
            base = VoidType()
        elif token.value == "enum":
            name = self.expect_name().value
            if name not in self.enums:
                raise ActionParseError(f"unknown enum {name!r}", token.line)
            base = self.enums[name]
        elif token.value == "struct":
            name = self.expect_name().value
            if name not in self.structs:
                raise ActionParseError(f"unknown struct {name!r}", token.line)
            base = self.structs[name]
        elif token.kind == "name" and token.value in self.typedefs:
            base = self.typedefs[token.value]
        else:
            raise ActionParseError(f"expected type, got {token.value!r}",
                                   token.line)
        while self.peek().value == "[":
            self.take()
            length = self.expect_number().number
            self.expect("]")
            base = ArrayType(base, length)
        return base

    # -- top level -----------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            token = self.peek()
            if token.value == "enum":
                program.enums.append(self.parse_enum_decl())
            elif token.value == "typedef":
                self.parse_typedef(program)
            elif token.value == "struct" and self.peek(2).value == "{":
                program.structs.append(self.parse_struct_body())
                self.expect(";")
            elif self.at_type():
                self.parse_type_lead(program)
            else:
                raise ActionParseError(
                    f"unexpected {token.value!r} at top level", token.line)
        return program

    def parse_enum_decl(self) -> EnumType:
        self.expect("enum")
        name = self.expect_name().value
        self.expect("{")
        members = [self.expect_name().value]
        while self.accept(","):
            members.append(self.expect_name().value)
        self.expect("}")
        self.expect(";")
        enum_type = EnumType(name, tuple(members))
        self.enums[name] = enum_type
        # Fig. 2b uses bare enum names as types ("ECD Type;"), so the enum
        # name doubles as a typedef.
        self.typedefs[name] = enum_type
        for member in members:
            self.enum_members[member] = enum_type
        return enum_type

    def parse_struct_body(self) -> StructType:
        """``struct NAME { fields }`` — registers and returns the type."""
        self.expect("struct")
        tag = self.expect_name().value if self.peek().kind == "name" else ""
        self.expect("{")
        fields = []
        while not self.accept("}"):
            ftype = self.parse_type()
            fname = self.expect_name().value
            self.expect(";")
            fields.append((fname, ftype))
        struct_type = StructType(tag or "<anon>", tuple(fields))
        if tag:
            self.structs[tag] = struct_type
        return struct_type

    def parse_typedef(self, program: Program) -> None:
        self.expect("typedef")
        if self.peek().value == "struct":
            struct_type = self.parse_struct_body()
            alias = self.expect_name().value
            self.expect(";")
            # the alias names the struct: Fig. 2b's ``typedef struct port
            # {...} Port;``
            named = StructType(alias, struct_type.fields)
            self.structs[alias] = named
            self.typedefs[alias] = named
            program.structs.append(named)
            program.typedefs.append((alias, named))
        else:
            target = self.parse_type()
            alias = self.expect_name().value
            self.expect(";")
            self.typedefs[alias] = target
            program.typedefs.append((alias, target))

    def parse_type_lead(self, program: Program) -> None:
        """A declaration starting with a type: global var or function."""
        line = self.peek().line
        typ = self.parse_type()
        name = self.expect_name().value
        if self.peek().value == "(":
            program.functions.append(self.parse_function(typ, name, line))
        else:
            program.globals.append(self.parse_global(typ, name))

    def parse_array_suffix(self, typ: Type) -> Type:
        """C puts array lengths after the declared name: ``int:8 buf[16];``."""
        while self.peek().value == "[":
            self.take()
            length = self.expect_number().number
            self.expect("]")
            typ = ArrayType(typ, length)
        return typ

    def parse_global(self, typ: Type, name: str) -> GlobalVar:
        typ = self.parse_array_suffix(typ)
        init: Optional[Expr] = None
        init_list: Optional[List[Expr]] = None
        if self.accept("="):
            if self.peek().value == "{":
                self.take()
                init_list = []
                if self.peek().value != "}":
                    init_list.append(self.parse_expr())
                    while self.accept(","):
                        init_list.append(self.parse_expr())
                self.expect("}")
            else:
                init = self.parse_expr()
        self.expect(";")
        return GlobalVar(name, typ, init=init, init_list=init_list)

    def parse_function(self, return_type: Type, name: str,
                       line: Optional[int] = None) -> Function:
        self.expect("(")
        params: List[Param] = []
        if self.peek().value != ")":
            if self.peek().value == "void" and self.peek(1).value == ")":
                self.take()
            else:
                while True:
                    ptype = self.parse_type()
                    pname = self.expect_name().value
                    params.append(Param(pname, ptype))
                    if not self.accept(","):
                        break
        self.expect(")")
        wcet: Optional[int] = None
        if self.peek().value == "@":
            # @wcet(N) between signature and body
            self.take()
            keyword = self.expect_name().value
            if keyword != "wcet":
                raise ActionParseError(f"unknown annotation @{keyword}",
                                       self.peek().line)
            self.expect("(")
            wcet = self.expect_number().number
            self.expect(")")
        body = self.parse_block()
        return Function(name, params, return_type, body, wcet_override=wcet,
                        line=line)

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> List[Stmt]:
        self.expect("{")
        stmts: List[Stmt] = []
        while not self.accept("}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> Stmt:
        token = self.peek()
        if token.value == "@":
            return self.parse_annotated()
        if token.value == "if":
            return self.parse_if()
        if token.value == "while":
            return self.parse_while(bound=None)
        if token.value == "return":
            self.take()
            value = None if self.peek().value == ";" else self.parse_expr()
            self.expect(";")
            return Return(value, line=token.line)
        if self.at_type():
            typ = self.parse_type()
            name = self.expect_name().value
            typ = self.parse_array_suffix(typ)
            init = self.parse_expr() if self.accept("=") else None
            self.expect(";")
            return VarDecl(name, typ, init, line=token.line)
        # expression or assignment
        expr = self.parse_expr()
        op_token = self.peek()
        if op_token.value in _ASSIGN_OPS:
            self.take()
            value = self.parse_expr()
            self.expect(";")
            if not isinstance(expr, (NameRef, FieldAccess, Index)):
                raise ActionParseError("assignment target must be a variable, "
                                       "field or element", op_token.line)
            return Assign(expr, value, _ASSIGN_OPS[op_token.value],
                          line=token.line)
        self.expect(";")
        return ExprStmt(expr, line=token.line)

    def parse_annotated(self) -> Stmt:
        line = self.expect("@").line
        keyword = self.expect_name().value
        if keyword != "bound":
            raise ActionParseError(f"unknown annotation @{keyword}", line)
        self.expect("(")
        bound = self.expect_number().number
        self.expect(")")
        if self.peek().value != "while":
            raise ActionParseError("@bound must precede a while loop", line)
        return self.parse_while(bound=bound)

    def parse_if(self) -> Stmt:
        line = self.peek().line
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = (self.parse_block() if self.peek().value == "{"
                     else [self.parse_stmt()])
        else_body: List[Stmt] = []
        if self.accept("else"):
            if self.peek().value == "if":
                else_body = [self.parse_if()]
            else:
                else_body = (self.parse_block() if self.peek().value == "{"
                             else [self.parse_stmt()])
        return If(cond, then_body, else_body, line=line)

    def parse_while(self, bound: Optional[int]) -> Stmt:
        line = self.peek().line
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        body = (self.parse_block() if self.peek().value == "{"
                else [self.parse_stmt()])
        return While(cond, body, bound=bound, line=line)

    # -- expressions -----------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_binary(0)

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        expr = self.parse_binary(level + 1)
        ops = dict(_BINARY_LEVELS[level])
        while self.peek().value in ops:
            op = ops[self.take().value]
            right = self.parse_binary(level + 1)
            expr = Binary(op, expr, right)
        return expr

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token.value in _UNARY_OPS:
            self.take()
            return Unary(_UNARY_OPS[token.value], self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.value == ".":
                self.take()
                expr = FieldAccess(expr, self.expect_name().value)
            elif token.value == "[":
                self.take()
                index = self.parse_expr()
                self.expect("]")
                expr = Index(expr, index)
            else:
                return expr

    def parse_primary(self) -> Expr:
        token = self.take()
        if token.kind == "number":
            return IntLiteral(token.number, base=token.base)
        if token.value == "true":
            return BoolLiteral(True)
        if token.value == "false":
            return BoolLiteral(False)
        if token.value == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "name":
            if self.peek().value == "(":
                self.take()
                args: List[Expr] = []
                if self.peek().value != ")":
                    args.append(self.parse_expr())
                    while self.accept(","):
                        args.append(self.parse_expr())
                self.expect(")")
                return Call(token.value, args)
            return NameRef(token.value)
        raise ActionParseError(f"unexpected token {token.value!r}", token.line)


def parse_program(text: str) -> Program:
    """Parse an intermediate-C translation unit."""
    return Parser(tokenize(text)).parse_program()


def parse_with_preamble(text: str) -> Program:
    """Parse *text* with the standard preamble of Fig. 2b prepended.

    The preamble defines the ``ECD``/``Encoding``/``PortDir`` enums and the
    ``Port``/``EventCondition`` structs that "are always part of the
    generated C code".
    """
    from repro.action.stdlib import PREAMBLE

    return parse_program(PREAMBLE + "\n" + text)
