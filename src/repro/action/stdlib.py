"""The standard preamble and builtin routines of the intermediate C dialect.

Fig. 2b shows "part of a preamble of data types that are always part of the
generated C code, plus some port declarations".  :data:`PREAMBLE` reproduces
that preamble verbatim (module the whitespace).  These code pieces "are not
actually executed, but used by the compiler to generate the hardware port
architecture, and instruction sequences to access the ports" — accordingly,
the code generator treats ``Port``/``EventCondition`` globals as
*architecture directives*, not data.

Builtins are the operations a transition routine can perform on the machine
state around it; each maps to a short fixed instruction sequence:

===================  ====================================================
builtin              meaning
===================  ====================================================
``Raise(E)``         set event E in the Configuration Register
``SetTrue(C)``       set condition C (through the TEP's condition cache)
``SetFalse(C)``      clear condition C
``Test(C)``          read condition C (returns bool)
``ReadPort(P)``      read a data port
``WritePort(P, v)``  write a data port
===================  ====================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.action.ast import BoolType, IntType, Type, VoidType

PREAMBLE = """
enum ECD {Event, Condition, Data};
enum Encoding {Onehot, Binary};
enum PortDir {Input, Output, Bidirectional};
typedef struct port {
  ECD          Type;
  int:8        Width;
  int:8        Address;
  PortDir      Direction;
} Port;
typedef struct ec {
  ECD           Type;
  int:4         Size;
  int:8         Representation;
  int:4         PositionInPort;
  Port          p;
  int:32        TimeConstraint;
} EventCondition;
"""

#: builtin name -> (parameter kinds, return type).  Parameter kind strings:
#: ``"event"``, ``"condition"``, ``"port"`` (resolved against the chart) or
#: ``"value"`` (an ordinary expression).
BUILTINS: Dict[str, Tuple[Tuple[str, ...], Type]] = {
    "Raise": (("event",), VoidType()),
    "SetTrue": (("condition",), VoidType()),
    "SetFalse": (("condition",), VoidType()),
    "Test": (("condition",), BoolType()),
    "ReadPort": (("port",), IntType(8, signed=False)),
    "WritePort": (("port", "value"), VoidType()),
}


def is_builtin(name: str) -> bool:
    return name in BUILTINS
