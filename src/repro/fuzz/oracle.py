"""Differential oracle: reference interpreter vs. every ladder rung.

The oracle takes one generated :class:`~repro.fuzz.generator.ChartSpec`
and a seeded event trace and runs it through a *stack* of independent
implementations:

1. the reference :class:`~repro.statechart.semantics.Interpreter` with the
   :class:`~repro.fuzz.reference.SpecEvaluator` executing routine bodies in
   exact Python integers (ground truth),
2. the full :class:`~repro.pscp.machine.PscpMachine` at **every** rung of
   the improvement ladder (section 4) — baseline, peephole, storage
   promotion (internal then registers), pattern hardware, custom
   instructions, wider bus, replicated TEPs — replicated here without
   :class:`~repro.flow.improve.Improver`'s early exit so every rung is
   exercised even when the baseline already meets timing,
3. a mid-run ``snapshot()``/``restore()`` continuation on the final rung,
4. a delta-chain reconstruction (``diff_snapshots``/``apply_delta``) whose
   reconstructed snapshot must be fingerprint-identical and must continue
   the run bit-for-bit.

Per cycle the oracle compares five observable fields — configuration,
fired transition indices, the condition vector, port latches and global
variable values — and attributes the *first* divergence as a
``(stage, cycle, field, expected, actual)`` tuple that the shrinker and
bisector consume downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.flow.build import (
    BuiltSystem,
    build_system,
    select_initial_architecture,
)
from repro.flow.improve import hot_globals
from repro.fuzz.generator import (
    ChartSpec,
    TransitionSpec,
    event_trace,
    render_chart,
    render_source,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.reference import SpecEvaluator
from repro.hw.library import custom_instruction_is_safe
from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.patterns import (
    find_comparator_sites,
    find_custom_candidates,
    find_negation_sites,
)
from repro.resil.delta import apply_delta, diff_snapshots, snapshot_fingerprint
from repro.statechart.labels import Label
from repro.statechart.model import Chart
from repro.statechart.parser import emit_chart, parse_chart
from repro.statechart.semantics import Interpreter

#: non-rung stages appended after the ladder, in order.
EXTRA_STAGES: Tuple[str, ...] = ("snapshot-restore", "delta-chain")


class RoundTripError(Exception):
    """``parse(emit(chart))`` was not structurally identical."""


@dataclass(frozen=True)
class Divergence:
    """First observable disagreement between a stage and the reference."""

    stage: str
    cycle: int
    field: str
    expected: object
    actual: object

    def describe(self) -> str:
        return (f"stage {self.stage!r} diverged at cycle {self.cycle} "
                f"on {self.field}: expected {self.expected!r}, "
                f"got {self.actual!r}")

    def to_json(self) -> dict:
        return {
            "stage": self.stage,
            "cycle": self.cycle,
            "field": self.field,
            "expected": _jsonable(self.expected),
            "actual": _jsonable(self.actual),
        }


def _jsonable(value: object) -> object:
    if isinstance(value, (tuple, list, frozenset, set)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(item) for item in items]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class CycleState:
    """The per-cycle observable state every stage must agree on."""

    configuration: Tuple[str, ...]
    fired: Tuple[int, ...]
    conditions: Tuple[Tuple[str, bool], ...]
    ports: Tuple[Tuple[str, int], ...]
    variables: Tuple[Tuple[str, int], ...]

    FIELDS = ("configuration", "fired", "conditions", "ports", "variables")


def _compare(stage: str, cycle: int, expected: CycleState,
             actual: CycleState) -> Optional[Divergence]:
    for field in CycleState.FIELDS:
        want = getattr(expected, field)
        got = getattr(actual, field)
        if want != got:
            return Divergence(stage, cycle, field, want, got)
    return None


# ---------------------------------------------------------------------------
# round-trip structural identity (satellite: textual round-trip hardening)
# ---------------------------------------------------------------------------

def _chart_signature(chart: Chart) -> Dict[str, object]:
    """Order-independent structural digest used for round-trip checks."""
    return {
        "name": chart.name,
        "root": chart.root,
        "events": sorted((e.name, e.period, e.port)
                         for e in chart.events.values()),
        "conditions": sorted((c.name, bool(c.initial), c.port)
                             for c in chart.conditions.values()),
        "ports": sorted((p.name, p.kind.name, p.width, p.direction.name,
                         p.address) for p in chart.ports.values()),
        "states": sorted((s.name, s.kind.name, tuple(s.children), s.default)
                         for s in chart.states.values()),
        "transitions": sorted(
            (t.source, t.target, t.index,
             str(Label(t.trigger, t.guard, t.action)),
             t.wcet_override)
            for t in chart.transitions),
    }


def check_roundtrip(chart: Chart) -> None:
    """Assert ``parse(emit_chart(chart))`` is structurally identical.

    Raises :class:`RoundTripError` naming the first differing section.
    """
    text = emit_chart(chart)
    reparsed = parse_chart(text, name=chart.name)
    want = _chart_signature(chart)
    got = _chart_signature(reparsed)
    for section in want:
        if want[section] != got[section]:
            raise RoundTripError(
                f"round-trip mismatch in {section}: "
                f"emitted {want[section]!r} but reparsed {got[section]!r}")


# ---------------------------------------------------------------------------
# the improvement ladder, replicated without the early exit
# ---------------------------------------------------------------------------

@dataclass
class Rung:
    """One ladder point: its name, the knobs, and the built system."""

    name: str
    arch: ArchConfig
    storage_map: Dict[str, StorageClass]
    system: BuiltSystem


def ladder_rungs(chart: Chart, source: str,
                 initial_arch: Optional[ArchConfig] = None,
                 max_rungs: Optional[int] = None) -> List[Rung]:
    """Every rung :meth:`Improver.run` could visit, in ladder order.

    Mirrors :mod:`repro.flow.improve` step by step (same knob mutations,
    same ``hot_globals`` ranking, same custom-instruction selection) but
    never stops when constraints are met — the oracle wants every point of
    the trajectory, not the first satisfying one.  The opt-in ``pipeline``
    rung (``allow_pipelining``) is excluded, matching the Improver default.
    """
    arch = (initial_arch if initial_arch is not None
            else select_initial_architecture(chart, source))
    storage_map: Dict[str, StorageClass] = {}
    rungs: List[Rung] = []

    def add(name: str) -> BuiltSystem:
        system = build_system(chart, source, arch,
                              storage_map=dict(storage_map))
        rungs.append(Rung(name, arch, dict(storage_map), system))
        return system

    def full() -> bool:
        return max_rungs is not None and len(rungs) >= max_rungs

    system = add("baseline")
    if full():
        return rungs

    arch = arch.with_(microcode_optimized=True)
    system = add("peephole")
    if full():
        return rungs

    promoted = hot_globals(system)
    storage_map = {name: StorageClass.INTERNAL for name in promoted}
    system = add("promote-internal")
    if full():
        return rungs

    arch = arch.with_(register_file_size=4)
    for name in hot_globals(system)[:4]:
        storage_map[name] = StorageClass.REGISTER
    system = add("promote-register")
    if full():
        return rungs

    pattern_flags = {}
    if find_comparator_sites(system.checked.program):
        pattern_flags["has_comparator"] = True
    if find_negation_sites(system.checked.program):
        pattern_flags["has_negator"] = True
    if pattern_flags:
        arch = arch.with_(**pattern_flags)
        system = add("patterns")
        if full():
            return rungs

    candidates = find_custom_candidates(
        system.checked.program, max_operands=2 + arch.register_file_size)
    selected = []
    for candidate in candidates:
        custom = candidate.to_instruction(len(selected))
        if custom_instruction_is_safe(custom, arch):
            selected.append(custom)
        if len(selected) >= 2:
            break
    if selected:
        arch = arch.with_(custom_instructions=tuple(selected))
        system = add("custom-instructions")
        if full():
            return rungs

    if arch.data_width < 16:
        arch = arch.with_(data_width=16,
                          internal_ram_words=max(64, arch.internal_ram_words))
        system = add("widen-bus")
        if full():
            return rungs

    while arch.n_teps < 2:
        arch = arch.with_(n_teps=arch.n_teps + 1)
        system = add("add-tep")
        if full():
            return rungs

    return rungs


# ---------------------------------------------------------------------------
# canary mutations (for the bisector and the CI canary job)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CanaryMutation:
    """A deliberate semantic bug introduced at one stage of the ladder.

    The mutation retargets the transition identified by ``(source,
    trigger)`` — a key that survives shrinking, unlike a positional index —
    and applies to the named stage *and every later stage*, modelling a
    rung bug whose effect persists down the ladder so the divergence is
    monotone and the bisector's binary search is sound.
    """

    stage: str
    source: str
    trigger: str
    new_target: str
    kind: str = "retarget"

    def to_json(self) -> dict:
        return {"stage": self.stage, "source": self.source,
                "trigger": self.trigger, "new_target": self.new_target,
                "kind": self.kind}

    @classmethod
    def from_json(cls, doc: dict) -> "CanaryMutation":
        return cls(stage=doc["stage"], source=doc["source"],
                   trigger=doc["trigger"], new_target=doc["new_target"],
                   kind=doc.get("kind", "retarget"))


def ordered_transitions(spec: ChartSpec) -> List[TransitionSpec]:
    """Spec transitions in chart-index order (the renderer's emit order)."""
    order = {name: i for i, name in enumerate(spec.state_names())}
    return sorted(spec.transitions, key=lambda t: order.get(t.source, 0))


def apply_mutation(spec: ChartSpec,
                   mutation: CanaryMutation) -> Optional[ChartSpec]:
    """A deep copy of *spec* with the mutation applied, or ``None`` if the
    identified transition (or the new target) no longer exists."""
    mutated = spec_from_json(spec_to_json(spec))
    matches = [i for i, t in enumerate(mutated.transitions)
               if t.source == mutation.source
               and t.trigger == mutation.trigger]
    if len(matches) != 1:
        return None
    index = matches[0]
    names = set(mutated.state_names())
    if (mutation.new_target not in names
            or mutated.transitions[index].target == mutation.new_target):
        return None
    mutated.transitions[index] = replace(
        mutated.transitions[index], target=mutation.new_target)
    return mutated


def plant_canary(spec: ChartSpec, stage: str, cycles: int = 40,
                 trace_seed: Optional[int] = None
                 ) -> Optional[CanaryMutation]:
    """Find a mutation guaranteed to diverge when applied at *stage*.

    Runs the reference interpreter over the harness trace, takes the
    transitions that actually fired, and retargets the first one whose
    target has a sibling to point at instead — so the mutated machine
    demonstrably reaches a different configuration at the firing cycle.
    """
    if trace_seed is None:
        trace_seed = (spec.seed or 0) * 7919 + 1
    trace = event_trace(trace_seed, spec.events, cycles)
    chart = render_chart(spec)
    evaluator = SpecEvaluator(spec)
    interp = Interpreter(chart, actions=evaluator.handlers())
    fired_indices: List[int] = []
    for events in trace:
        step = interp.step(events)
        for transition in step.fired:
            if transition.index not in fired_indices:
                fired_indices.append(transition.index)

    ordered = ordered_transitions(spec)
    parents = spec.parent_map()
    by_name = {s.name: s for s in spec.states()}
    for index in fired_indices:
        candidate = ordered[index]
        matches = [t for t in spec.transitions
                   if t.source == candidate.source
                   and t.trigger == candidate.trigger]
        if len(matches) != 1:
            continue
        parent_name = parents.get(candidate.target)
        container = (spec.root if parent_name is None
                     else by_name[parent_name])
        siblings = [child.name for child in container.children
                    if child.name != candidate.target]
        if not siblings:
            continue
        return CanaryMutation(stage=stage, source=candidate.source,
                              trigger=candidate.trigger,
                              new_target=siblings[0])
    return None


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------

@dataclass
class OracleResult:
    """Outcome of a full oracle run over every stage."""

    stages: List[str]
    divergences: List[Divergence]

    @property
    def clean(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def to_json(self) -> dict:
        return {"stages": list(self.stages),
                "divergences": [d.to_json() for d in self.divergences]}


class OracleHarness:
    """Binds one spec + trace to the full differential stage stack."""

    def __init__(self, spec: ChartSpec, cycles: int = 40,
                 trace_seed: Optional[int] = None,
                 max_rungs: Optional[int] = None,
                 mutation: Optional[CanaryMutation] = None,
                 initial_arch: Optional[ArchConfig] = None) -> None:
        self.spec = spec
        self.cycles = cycles
        self.trace_seed = ((spec.seed or 0) * 7919 + 1
                           if trace_seed is None else trace_seed)
        self.trace = event_trace(self.trace_seed, spec.events, cycles)
        self.mutation = mutation
        self.max_rungs = max_rungs
        self.initial_arch = initial_arch
        self.source = render_source(spec)
        self.chart = render_chart(spec)
        self._rungs: Optional[List[Rung]] = None
        self._reference: Optional[List[CycleState]] = None
        self._mutated_systems: Dict[int, BuiltSystem] = {}
        self._mutated_chart: Optional[Chart] = None

    # -- stage inventory ----------------------------------------------------
    def rungs(self) -> List[Rung]:
        if self._rungs is None:
            self._rungs = ladder_rungs(self.chart, self.source,
                                       initial_arch=self.initial_arch,
                                       max_rungs=self.max_rungs)
        return self._rungs

    def stage_names(self) -> List[str]:
        return [rung.name for rung in self.rungs()] + list(EXTRA_STAGES)

    def _mutation_index(self) -> int:
        names = self.stage_names()
        if self.mutation is None:
            return len(names)
        if self.mutation.stage not in names:
            raise ValueError(
                f"mutation stage {self.mutation.stage!r} not in {names}")
        return names.index(self.mutation.stage)

    def _system_for(self, index: int) -> BuiltSystem:
        rungs = self.rungs()
        rung = rungs[min(index, len(rungs) - 1)]
        if self.mutation is None or index < self._mutation_index():
            return rung.system
        rung_index = min(index, len(rungs) - 1)
        if rung_index not in self._mutated_systems:
            if self._mutated_chart is None:
                mutated_spec = apply_mutation(self.spec, self.mutation)
                if mutated_spec is None:
                    raise ValueError(
                        f"mutation {self.mutation} no longer applies")
                self._mutated_chart = render_chart(mutated_spec)
            self._mutated_systems[rung_index] = build_system(
                self._mutated_chart, self.source, rung.arch,
                storage_map=dict(rung.storage_map))
        return self._mutated_systems[rung_index]

    # -- reference run ------------------------------------------------------
    def reference_states(self) -> List[CycleState]:
        if self._reference is None:
            evaluator = SpecEvaluator(self.spec)
            interp = Interpreter(self.chart, actions=evaluator.handlers())
            states: List[CycleState] = []
            for events in self.trace:
                step = interp.step(events)
                states.append(CycleState(
                    configuration=tuple(sorted(interp.configuration)),
                    fired=tuple(t.index for t in step.fired),
                    conditions=tuple(sorted(
                        interp.condition_values.items())),
                    ports=tuple(sorted(evaluator.ports.items())),
                    variables=tuple(sorted(evaluator.globals.items())),
                ))
            self._reference = states
        return self._reference

    # -- machine-side capture ----------------------------------------------
    def _capture(self, machine, system: BuiltSystem, step) -> CycleState:
        maps = system.compiled.maps
        locations = system.compiled.allocator.locations
        return CycleState(
            configuration=tuple(sorted(machine.cr.configuration)),
            fired=tuple(t.index for t in step.fired),
            conditions=tuple(sorted(
                machine.cr.condition_vector().items())),
            ports=tuple(sorted(
                (name, machine.ports.latch_value(address))
                for name, address in maps.ports.items())),
            variables=tuple(sorted(
                (v.name, machine.executor.read_variable(locations[v.name]))
                for v in self.spec.variables if v.name in locations)),
        )

    def _run_machine(self, stage: str, system: BuiltSystem,
                     machine, start: int, stop: int
                     ) -> Optional[Divergence]:
        reference = self.reference_states()
        for cycle in range(start, stop):
            step = machine.step(self.trace[cycle])
            divergence = _compare(stage, cycle, reference[cycle],
                                  self._capture(machine, system, step))
            if divergence is not None:
                return divergence
        return None

    # -- stages -------------------------------------------------------------
    def _run_rung_stage(self, stage: str,
                        system: BuiltSystem) -> Optional[Divergence]:
        return self._run_machine(stage, system, system.make_machine(),
                                 0, self.cycles)

    def _run_snapshot_stage(self, stage: str,
                            system: BuiltSystem) -> Optional[Divergence]:
        machine = system.make_machine()
        mid = max(1, self.cycles // 2)
        divergence = self._run_machine(stage, system, machine, 0, mid)
        if divergence is not None:
            return divergence
        snapshot = machine.snapshot()
        fresh = system.make_machine()
        fresh.restore(snapshot)
        return self._run_machine(stage, system, fresh, mid, self.cycles)

    def _run_delta_stage(self, stage: str,
                         system: BuiltSystem) -> Optional[Divergence]:
        machine = system.make_machine()
        first = max(1, self.cycles // 3)
        mid = max(first + 1, (2 * self.cycles) // 3)
        base = None
        reference = self.reference_states()
        for cycle in range(mid):
            step = machine.step(self.trace[cycle])
            divergence = _compare(stage, cycle, reference[cycle],
                                  self._capture(machine, system, step))
            if divergence is not None:
                return divergence
            if cycle + 1 == first:
                base = machine.snapshot()
        target = machine.snapshot()
        delta = diff_snapshots(base, target)
        reconstructed = apply_delta(base, delta)
        want = snapshot_fingerprint(target)
        got = snapshot_fingerprint(reconstructed)
        if want != got:
            return Divergence(stage, mid, "snapshot-fingerprint", want, got)
        fresh = system.make_machine()
        fresh.restore(reconstructed)
        return self._run_machine(stage, system, fresh, mid, self.cycles)

    def run_stage(self, index: int) -> Optional[Divergence]:
        """Run stage *index* against the reference; first divergence or
        ``None``.  Build failures are reported as ``field="build"``."""
        name = self.stage_names()[index]
        try:
            system = self._system_for(index)
        except Exception as exc:  # noqa: BLE001 — any build crash is data
            return Divergence(name, -1, "build", "system builds",
                              f"{type(exc).__name__}: {exc}")
        if name == "snapshot-restore":
            return self._run_snapshot_stage(name, system)
        if name == "delta-chain":
            return self._run_delta_stage(name, system)
        return self._run_rung_stage(name, system)

    def run_all(self, stop_at_first: bool = False) -> OracleResult:
        """Round-trip assert, then every stage in ladder order."""
        check_roundtrip(self.chart)
        names = self.stage_names()
        divergences: List[Divergence] = []
        for index in range(len(names)):
            divergence = self.run_stage(index)
            if divergence is not None:
                divergences.append(divergence)
                if stop_at_first:
                    break
        return OracleResult(stages=names, divergences=divergences)
