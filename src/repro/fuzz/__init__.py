"""Differential chart fuzzing: seeded generation, multi-rung oracle,
delta-debugging shrinker and ladder bisection.

The fuzzer closes the loop the ROADMAP's "differential fuzzing" item asks
for: random-but-well-formed hierarchical charts with *real* action routines
are run through the reference :class:`~repro.statechart.semantics.Interpreter`
and the full :class:`~repro.pscp.machine.PscpMachine` at every improvement-
ladder rung (plus a snapshot/restore continuation and a delta-chain
reconstruction), and any divergence is shrunk to a minimal reproducing chart
and bisected to the guilty stage.

Public API::

    from repro.fuzz import (
        ChartSpec, GeneratorConfig, generate_spec, render_chart,
        render_source, SpecEvaluator, OracleHarness, FuzzCampaign,
    )
"""

from repro.fuzz.generator import (
    ChartSpec,
    GeneratorConfig,
    RoutineSpec,
    StateSpec,
    TransitionSpec,
    VarSpec,
    event_trace,
    generate_spec,
    render_chart,
    render_label,
    render_source,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.reference import EvaluationError, SpecEvaluator
from repro.fuzz.oracle import (
    CanaryMutation,
    Divergence,
    OracleHarness,
    OracleResult,
    RoundTripError,
    apply_mutation,
    ladder_rungs,
    plant_canary,
)
from repro.fuzz.shrink import shrink_spec, spec_size
from repro.fuzz.bisect import BisectVerdict, bisect_harness, first_true
from repro.fuzz.campaign import (
    FUZZ_REPORT_VERSION,
    ChartOutcome,
    FuzzCampaign,
    FuzzReport,
    replay_corpus,
)

__all__ = [
    "BisectVerdict",
    "CanaryMutation",
    "ChartOutcome",
    "ChartSpec",
    "Divergence",
    "EvaluationError",
    "FUZZ_REPORT_VERSION",
    "FuzzCampaign",
    "FuzzReport",
    "GeneratorConfig",
    "OracleHarness",
    "OracleResult",
    "RoundTripError",
    "RoutineSpec",
    "SpecEvaluator",
    "StateSpec",
    "TransitionSpec",
    "VarSpec",
    "apply_mutation",
    "bisect_harness",
    "event_trace",
    "first_true",
    "generate_spec",
    "ladder_rungs",
    "plant_canary",
    "render_chart",
    "render_label",
    "render_source",
    "replay_corpus",
    "shrink_spec",
    "spec_from_json",
    "spec_size",
    "spec_to_json",
]
