"""Deterministic fuzz campaigns with a versioned, byte-stable report.

Mirrors :class:`~repro.fault.campaign.FaultCampaign`: one top-level seed,
per-chart seeds derived as ``seed * 7919 + index``, and a report whose
canonical JSON serialization is byte-identical across same-seed runs (the
CI ``fuzz-smoke`` job runs the campaign twice and ``cmp``s the files).

Per chart the campaign (1) generates a spec, (2) asserts it lints
error-free — the generator's contract, (3) runs the full oracle stage
stack, and on divergence (4) bisects the ladder to the guilty stage and
(5) shrinks the spec to a single-removal-minimal reproducer, recorded in
the Fig. 2a textual format for the regression corpus.

``--canary <stage>`` plants a deliberate retargeting mutation at the named
stage in every chart where one fits; the CI canary job asserts at least
one such mutation is detected, shrinks to ≤ 8 states and bisects to
exactly the planted stage.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.flow.build import select_initial_architecture
from repro.fuzz.bisect import bisect_harness
from repro.fuzz.generator import (
    ChartSpec,
    GeneratorConfig,
    generate_spec,
    render_chart,
    render_source,
    spec_from_json,
    spec_to_json,
)
from repro.fuzz.oracle import (
    CanaryMutation,
    Divergence,
    OracleHarness,
    RoundTripError,
    plant_canary,
)
from repro.fuzz.shrink import shrink_spec, spec_size
from repro.statechart.parser import emit_chart

FUZZ_REPORT_VERSION = 1


@dataclass
class ChartOutcome:
    """What happened to one generated chart."""

    index: int
    chart_seed: int
    name: str
    states: int
    transitions: int
    status: str  # clean | diverged | lint-error | roundtrip-error |
    #              canary-unplantable | bmc-mismatch
    stages: List[str] = field(default_factory=list)
    lint_errors: List[str] = field(default_factory=list)
    bmc: Optional[dict] = None
    divergence: Optional[Divergence] = None
    guilty_stage: Optional[str] = None
    bisect_verified: Optional[bool] = None
    stages_checked: Optional[int] = None
    shrunk_states: Optional[int] = None
    shrunk_size: Optional[int] = None
    shrunk_chart: Optional[str] = None
    shrunk_spec: Optional[dict] = None

    def to_json(self) -> dict:
        doc = {
            "index": self.index,
            "chart_seed": self.chart_seed,
            "name": self.name,
            "states": self.states,
            "transitions": self.transitions,
            "status": self.status,
            "stages": list(self.stages),
            "lint_errors": list(self.lint_errors),
            "divergence": (self.divergence.to_json()
                           if self.divergence else None),
            "guilty_stage": self.guilty_stage,
            "bisect_verified": self.bisect_verified,
            "stages_checked": self.stages_checked,
            "shrunk_states": self.shrunk_states,
            "shrunk_size": self.shrunk_size,
            "shrunk_chart": self.shrunk_chart,
            "shrunk_spec": self.shrunk_spec,
        }
        if self.bmc is not None:
            # only present under --bmc, so default reports stay byte-stable
            doc["bmc"] = self.bmc
        return doc


@dataclass
class FuzzReport:
    """The full campaign, canonically serializable."""

    seed: int
    charts: int
    cycles: int
    canary_stage: Optional[str]
    outcomes: List[ChartOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(o.status in ("clean", "canary-unplantable")
                   for o in self.outcomes)

    def counts(self) -> dict:
        tally: dict = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    def to_json(self) -> dict:
        return {
            "version": FUZZ_REPORT_VERSION,
            "seed": self.seed,
            "charts": self.charts,
            "cycles": self.cycles,
            "canary_stage": self.canary_stage,
            "counts": self.counts(),
            "outcomes": [outcome.to_json() for outcome in self.outcomes],
        }

    def dumps(self) -> str:
        """Canonical byte-stable serialization (sorted keys, LF-ended)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        from repro.flow import ascii_table

        rows = [
            (outcome.index, outcome.chart_seed, outcome.states,
             outcome.transitions, outcome.status,
             outcome.divergence.stage if outcome.divergence else "-",
             outcome.guilty_stage or "-",
             outcome.shrunk_states if outcome.shrunk_states is not None
             else "-")
            for outcome in self.outcomes
        ]
        return ascii_table(
            ["#", "Seed", "States", "Trans", "Status", "Diverged at",
             "Guilty stage", "Shrunk states"],
            rows,
            title=(f"Fuzz campaign: seed {self.seed}, "
                   f"{self.charts} chart(s), {self.cycles} cycles"
                   + (f", canary at {self.canary_stage}"
                      if self.canary_stage else "")))


class FuzzCampaign:
    """Seeded differential campaign over generated charts."""

    def __init__(self, seed: int = 1, charts: int = 50, cycles: int = 40,
                 config: Optional[GeneratorConfig] = None,
                 max_rungs: Optional[int] = None,
                 canary_stage: Optional[str] = None,
                 shrink: bool = True,
                 bmc: bool = False) -> None:
        self.seed = seed
        self.charts = charts
        self.cycles = cycles
        self.config = config if config is not None else GeneratorConfig()
        self.max_rungs = max_rungs
        self.canary_stage = canary_stage
        self.shrink = shrink
        self.bmc = bmc

    # ------------------------------------------------------------------
    def run(self) -> FuzzReport:
        report = FuzzReport(seed=self.seed, charts=self.charts,
                            cycles=self.cycles,
                            canary_stage=self.canary_stage)
        for index in range(self.charts):
            chart_seed = self.seed * 7919 + index
            spec = generate_spec(chart_seed, self.config)
            report.outcomes.append(self._run_one(index, chart_seed, spec))
        return report

    def _run_one(self, index: int, chart_seed: int,
                 spec: ChartSpec) -> ChartOutcome:
        outcome = ChartOutcome(
            index=index, chart_seed=chart_seed, name=spec.name,
            states=len(spec.states()), transitions=len(spec.transitions),
            status="clean")

        chart = render_chart(spec)
        source = render_source(spec)
        lint = _lint(chart, source)
        if lint:
            outcome.status = "lint-error"
            outcome.lint_errors = lint
            return outcome

        mutation: Optional[CanaryMutation] = None
        if self.canary_stage is not None:
            mutation = plant_canary(spec, stage=self.canary_stage,
                                    cycles=self.cycles)
            if mutation is None:
                outcome.status = "canary-unplantable"
                return outcome

        harness = OracleHarness(spec, cycles=self.cycles,
                                max_rungs=self.max_rungs,
                                mutation=mutation)
        try:
            result = harness.run_all(stop_at_first=True)
        except RoundTripError as exc:
            outcome.status = "roundtrip-error"
            outcome.lint_errors = [str(exc)]
            return outcome
        outcome.stages = result.stages
        if result.clean:
            if self.bmc:
                outcome.bmc, ok = self._bmc_cross_check(chart, source,
                                                        harness)
                if not ok:
                    outcome.status = "bmc-mismatch"
            return outcome

        outcome.status = "diverged"
        outcome.divergence = result.first_divergence

        verdict = bisect_harness(harness)
        outcome.guilty_stage = verdict.guilty_stage
        outcome.bisect_verified = verdict.verified
        outcome.stages_checked = len(verdict.stages_checked)

        if self.shrink:
            shrunk = shrink_spec(
                spec, self._predicate(outcome.divergence, mutation))
            outcome.shrunk_states = len(shrunk.states())
            outcome.shrunk_size = spec_size(shrunk)
            outcome.shrunk_chart = emit_chart(render_chart(shrunk))
            outcome.shrunk_spec = spec_to_json(shrunk)
        return outcome

    def _predicate(self, original: Divergence,
                   mutation: Optional[CanaryMutation]):
        """"Still the same bug": diverges at the same stage on the same
        field.  Build crashes surface as ``field="build"`` and are thereby
        rejected unless the original divergence was itself a build crash."""

        def predicate(candidate: ChartSpec) -> bool:
            harness = OracleHarness(candidate, cycles=self.cycles,
                                    max_rungs=self.max_rungs,
                                    mutation=mutation)
            names = harness.stage_names()
            if original.stage not in names:
                return False
            divergence = harness.run_stage(names.index(original.stage))
            return (divergence is not None
                    and divergence.stage == original.stage
                    and divergence.field == original.field)

        return predicate

    # ------------------------------------------------------------------
    _BMC_MAX_IMPLIED = 12

    def _bmc_cross_check(self, chart, source, harness) -> tuple:
        """Model-check the chart against what we already know is true.

        Three independent probes of the checker (see docs/CHECKING.md):
        implied mutual exclusions (non-co-occupiable state pairs must never
        be reported violated), agreement (every configuration the reference
        interpreter visited must exist in the explored space) and a canary
        (a property over states we *watched* co-occupy must come back
        violated with a machine-replaying witness).  Returns
        ``(json-able summary, ok?)``.
        """
        from repro.analysis.bmc import VIOLATED, check_system
        from repro.analysis.chart_lint import co_occupiable

        summary: dict = {"implied": 0, "implied_violations": [],
                         "agreement_misses": [], "canary": None,
                         "complete": None, "nodes": 0}
        ok = True

        names = sorted(chart.states)
        implied = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if not co_occupiable(chart, a, b):
                    implied.append((a, b))
            if len(implied) >= self._BMC_MAX_IMPLIED:
                break
        implied = implied[:self._BMC_MAX_IMPLIED]
        summary["implied"] = len(implied)

        reference = harness.reference_states()
        canary_pair = None
        for state in reference:
            config = [s for s in state.configuration]
            if len(config) >= 2:
                canary_pair = (config[0], config[-1])
                break

        lines = [f"never {a} while {b}" for a, b in implied]
        if canary_pair is not None:
            lines.append(f"never {canary_pair[0]} while {canary_pair[1]}")
        if not lines:
            summary["canary"] = "no-properties"
            return summary, ok

        system = harness.rungs()[0].system
        result = check_system(
            chart, source, system,
            properties_text="\n".join(lines) + "\n",
            depth=self.cycles, max_states=4000,
            include_declared_deadlines=False,
            label=chart.name)
        summary["complete"] = result.complete
        summary["nodes"] = result.nodes

        verdicts = list(result.verdicts)
        canary_verdict = verdicts.pop() if canary_pair is not None else None
        for (a, b), verdict in zip(implied, verdicts):
            # configurations are tracked exactly, so even an *unreplayed*
            # co-occupancy witness would mean the explorer is broken
            if verdict.status == VIOLATED or verdict.witness is not None:
                summary["implied_violations"].append(f"{a}/{b}")
                ok = False

        if result.space is not None and result.complete:
            explored = {(node[0], node[1]) for node in result.space.nodes}
            for cycle, state in enumerate(reference):
                proj = (frozenset(state.configuration),
                        frozenset(name for name, value in state.conditions
                                  if value))
                if proj not in explored:
                    summary["agreement_misses"].append(cycle)
                    ok = False
            summary["agreement_checked"] = len(reference)

        if canary_verdict is None:
            summary["canary"] = "no-pair"
        elif (canary_verdict.status == VIOLATED
                and canary_verdict.witness is not None
                and canary_verdict.witness.replayed):
            summary["canary"] = "violated-replayed"
        elif not result.complete:
            summary["canary"] = "bound-exhausted"
        else:
            summary["canary"] = f"missed ({canary_verdict.status})"
            ok = False
        return summary, ok


def _lint(chart, source) -> List[str]:
    """Error-severity diagnostics for one rendered chart, as strings."""
    from repro.analysis import lint_system

    arch = select_initial_architecture(chart, source)
    result = lint_system(chart, source, arch)
    return [diag.format() for diag in result.diagnostics
            if diag.severity.value == "error"]


# ---------------------------------------------------------------------------
# regression corpus replay
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    name: str
    ok: bool
    detail: str

    def to_json(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


def replay_corpus(directory: str,
                  cycles_default: int = 40) -> List[ReplayResult]:
    """Re-run every corpus entry and check its recorded expectation.

    Entry format (one JSON object per ``*.json`` file)::

        {"version": 1, "name": ..., "spec": {...}, "cycles": N,
         "mutation": {...} | null,
         "expect": {"clean": true} | {"stage": ..., "field": ...}}

    A clean entry must stay divergence-free on every stage; a diverging
    entry must still be caught and bisect to the recorded stage.
    """
    results: List[ReplayResult] = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path) as handle:
            doc = json.load(handle)
        name = doc.get("name", filename)
        spec = spec_from_json(doc["spec"])
        cycles = doc.get("cycles", cycles_default)
        mutation = (CanaryMutation.from_json(doc["mutation"])
                    if doc.get("mutation") else None)
        expect = doc.get("expect", {"clean": True})
        harness = OracleHarness(spec, cycles=cycles, mutation=mutation)
        try:
            if expect.get("clean"):
                result = harness.run_all(stop_at_first=True)
                if result.clean:
                    results.append(ReplayResult(name, True, "clean"))
                else:
                    results.append(ReplayResult(
                        name, False, result.first_divergence.describe()))
            else:
                verdict = bisect_harness(harness)
                if verdict.guilty_stage is None:
                    results.append(ReplayResult(
                        name, False, "expected divergence not reproduced"))
                elif verdict.guilty_stage != expect.get("stage"):
                    results.append(ReplayResult(
                        name, False,
                        f"bisected to {verdict.guilty_stage!r}, expected "
                        f"{expect.get('stage')!r}"))
                elif (expect.get("field") is not None
                      and verdict.divergence.field != expect["field"]):
                    results.append(ReplayResult(
                        name, False,
                        f"diverged on {verdict.divergence.field!r}, "
                        f"expected {expect['field']!r}"))
                else:
                    results.append(ReplayResult(
                        name, True,
                        f"caught at {verdict.guilty_stage}"))
        except Exception as exc:  # noqa: BLE001 — replay must not abort
            results.append(ReplayResult(
                name, False, f"{type(exc).__name__}: {exc}"))
    return results
