"""Bisecting the stage ladder to the first guilty stage.

The oracle's stage list is ordered (ladder rungs, then the snapshot and
delta-chain continuations) and a persistent rung bug is *monotone*: once a
stage diverges, every later stage inherits the bad system and diverges
too.  That makes "which stage introduced it?" a textbook binary search —
``first_true`` over the per-stage "does it diverge?" predicate — instead
of a linear sweep that would rebuild and re-run every rung.

The verdict re-checks both boundary stages (the guilty one must diverge,
its predecessor must not), so a non-monotone divergence — which would
break the search's assumption — is reported as unverified rather than
silently mis-attributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.fuzz.oracle import Divergence, OracleHarness


def first_true(count: int, predicate: Callable[[int], bool]) -> Optional[int]:
    """Index of the first ``True`` in a monotone 0/1 sequence of length
    *count*, or ``None`` if all ``False``.  O(log n) predicate calls."""
    if count <= 0:
        return None
    lo, hi = 0, count - 1
    if not predicate(hi):
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if predicate(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


@dataclass
class BisectVerdict:
    """Outcome of one ladder bisection."""

    guilty_stage: Optional[str]
    divergence: Optional[Divergence]
    stages_checked: List[str]
    verified: bool

    def to_json(self) -> dict:
        return {
            "guilty_stage": self.guilty_stage,
            "divergence": (self.divergence.to_json()
                           if self.divergence else None),
            "stages_checked": list(self.stages_checked),
            "verified": self.verified,
        }


def bisect_harness(harness: OracleHarness) -> BisectVerdict:
    """Binary-search *harness*'s stage ladder for the first diverging stage.

    Stage results are memoized, so the boundary verification reuses the
    search's own probes.
    """
    names = harness.stage_names()
    cache: Dict[int, Optional[Divergence]] = {}
    checked: List[str] = []

    def probe(index: int) -> Optional[Divergence]:
        if index not in cache:
            checked.append(names[index])
            cache[index] = harness.run_stage(index)
        return cache[index]

    guilty = first_true(len(names), lambda i: probe(i) is not None)
    if guilty is None:
        return BisectVerdict(guilty_stage=None, divergence=None,
                             stages_checked=checked, verified=True)
    verified = probe(guilty) is not None and (
        guilty == 0 or probe(guilty - 1) is None)
    return BisectVerdict(guilty_stage=names[guilty],
                         divergence=probe(guilty),
                         stages_checked=checked,
                         verified=verified)
