"""Reference executor for generated action routines.

The differential oracle needs two *independent* implementations of every
generated routine: the machine side compiles the rendered intermediate-C
text through the checker, code generator and TEP simulator; this side
interprets the :class:`~repro.fuzz.generator.RoutineSpec` statement nodes
directly with exact Python integers.

Exactness is the contract: the generator only emits arithmetic whose exact
mathematical value fits the expression width on every bus width (see
:mod:`repro.fuzz.generator`), so this evaluator performs **no masking** —
if a value ever leaves ``[0, 65535]`` that is a generator bug and raises
:class:`EvaluationError` instead of silently wrapping into something one
particular rung happens to agree with.

Handlers plug into :class:`repro.statechart.semantics.Interpreter` via its
``actions`` mapping; conditions and events flow through the interpreter's
CR model (same-cycle condition visibility, next-cycle event visibility),
while ports and global variables live here, mirroring the machine's
``PortBus`` latches and data memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.fuzz.generator import ChartSpec


class EvaluationError(Exception):
    """An invariant the generator promised was violated at evaluation time."""


class SpecEvaluator:
    """Executes spec routine bodies as interpreter action handlers."""

    def __init__(self, spec: ChartSpec) -> None:
        self.spec = spec
        self.globals: Dict[str, int] = {v.name: v.init
                                        for v in spec.variables}
        self.ports: Dict[str, int] = {p: 0 for p in spec.ports}

    def reset(self) -> None:
        self.globals = {v.name: v.init for v in self.spec.variables}
        self.ports = {p: 0 for p in self.spec.ports}

    # -- expression evaluation ---------------------------------------------
    def _value(self, node: list, scope: Dict[str, int]) -> int:
        kind = node[0]
        if kind == "lit":
            return node[1]
        if kind == "var":
            name = node[1]
            if name in scope:
                return scope[name]
            if name in self.globals:
                return self.globals[name]
            raise EvaluationError(f"unknown variable {name!r}")
        if kind == "readport":
            return self.ports[node[1]]
        if kind == "bin":
            left = self._value(node[2], scope)
            right = self._value(node[3], scope)
            op = node[1]
            if op == "+":
                value = left + right
            elif op == "-":
                value = left - right
            elif op == "*":
                value = left * right
            elif op == "&":
                value = left & right
            elif op == "|":
                value = left | right
            elif op == "^":
                value = left ^ right
            else:
                raise EvaluationError(f"unknown operator {op!r}")
        elif kind == "shl":
            value = self._value(node[1], scope) << node[2]
        elif kind == "shr":
            value = self._value(node[1], scope) >> node[2]
        else:
            raise EvaluationError(f"unknown expr node {node!r}")
        if not 0 <= value <= 0xFFFF:
            raise EvaluationError(
                f"value {value} escaped the representable range in "
                f"{node!r}; the generator's range tracking is broken")
        return value

    def _truth(self, node: list, scope: Dict[str, int], interp) -> bool:
        kind = node[0]
        if kind == "test":
            return bool(interp.condition_values[node[1]])
        if kind == "cmp":
            left = self._value(node[2], scope)
            right = self._value(node[3], scope)
            op = node[1]
            return {"==": left == right, "!=": left != right,
                    "<": left < right, "<=": left <= right,
                    ">": left > right, ">=": left >= right}[op]
        if kind == "not":
            return not self._truth(node[1], scope, interp)
        if kind == "and":
            return (self._truth(node[1], scope, interp)
                    and self._truth(node[2], scope, interp))
        if kind == "or":
            return (self._truth(node[1], scope, interp)
                    or self._truth(node[2], scope, interp))
        raise EvaluationError(f"unknown bool node {node!r}")

    # -- statement execution -----------------------------------------------
    def _run_block(self, body: List[list], scope: Dict[str, int],
                   interp) -> None:
        for node in body:
            kind = node[0]
            if kind == "local":
                scope[node[1]] = self._value(node[4], scope)
            elif kind == "assign":
                name = node[1]
                value = self._value(node[2], scope)
                if name in scope:
                    scope[name] = value
                elif name in self.globals:
                    self.globals[name] = value
                else:
                    raise EvaluationError(f"unknown variable {name!r}")
            elif kind == "if":
                branch = (node[2] if self._truth(node[1], scope, interp)
                          else node[3])
                self._run_block(branch, scope, interp)
            elif kind == "settrue":
                interp.set_condition(node[1], True)
            elif kind == "setfalse":
                interp.set_condition(node[1], False)
            elif kind == "raise":
                interp.raise_event(node[1])
            elif kind == "writeport":
                self.ports[node[1]] = self._value(node[2], scope)
            else:
                raise EvaluationError(f"unknown stmt node {node!r}")

    # -- interpreter plumbing ----------------------------------------------
    def handlers(self) -> Dict[str, Callable]:
        """Action-handler mapping for ``Interpreter(chart, actions=...)``."""
        table: Dict[str, Callable] = {}
        for name in self.spec.routines:
            body = self.spec.routines[name].body

            def handler(interp, transition, _body=body) -> None:
                self._run_block(_body, {}, interp)

            table[name] = handler
        return table
