"""Delta-debugging minimizer for diverging chart specs.

Classic ddmin-style greedy shrinking over the spec IR: every candidate is
the current spec with exactly one element removed — a transition, a state
(plus everything that references it), a routine attachment, a single action
statement, or an unused declaration — and a candidate is kept iff the
caller's *predicate* still holds (typically "the oracle still diverges at
the same stage on the same field").  The loop restarts after every
successful removal and stops at a fixpoint, which is precisely the
single-removal minimality the tests assert: no one further removal keeps
the divergence alive.

Candidates that crash the predicate count as "divergence gone" — a shrink
must never trade a semantic divergence for an unrelated crash.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Tuple

from repro.fuzz.generator import (
    ChartSpec,
    StateSpec,
    spec_from_json,
    spec_to_json,
)


def _stmt_count(body: List[list]) -> int:
    total = 0
    for node in body:
        total += 1
        if node[0] == "if":
            total += _stmt_count(node[2]) + _stmt_count(node[3])
    return total


def spec_size(spec: ChartSpec) -> int:
    """Shrink metric: states + transitions + action statements."""
    return (len(spec.states()) + len(spec.transitions)
            + sum(_stmt_count(r.body) for r in spec.routines.values()))


def _copy(spec: ChartSpec) -> ChartSpec:
    return spec_from_json(spec_to_json(spec))


# ---------------------------------------------------------------------------
# statement paths
# ---------------------------------------------------------------------------

def _stmt_paths(body: List[list], prefix: Tuple = ()) -> Iterator[Tuple]:
    for index, node in enumerate(body):
        yield prefix + (index,)
        if node[0] == "if":
            yield from _stmt_paths(node[2], prefix + (index, "then"))
            yield from _stmt_paths(node[3], prefix + (index, "else"))


def _resolve_block(body: List[list], path: Tuple) -> List[list]:
    """The block holding the statement addressed by *path*."""
    block = body
    walk = list(path[:-1])
    while walk:
        index = walk.pop(0)
        branch = walk.pop(0)
        node = block[index]
        block = node[2] if branch == "then" else node[3]
    return block


def _used_names(spec: ChartSpec) -> Tuple[set, set, set]:
    """(variables, conditions, ports) referenced anywhere in the spec."""
    variables: set = set()
    conditions: set = set()
    ports: set = set()

    def walk_expr(node: list) -> None:
        kind = node[0]
        if kind == "var":
            variables.add(node[1])
        elif kind == "readport":
            ports.add(node[1])
        elif kind == "bin":
            walk_expr(node[2])
            walk_expr(node[3])
        elif kind in ("shl", "shr"):
            walk_expr(node[1])

    def walk_bool(node: list) -> None:
        kind = node[0]
        if kind == "test":
            conditions.add(node[1])
        elif kind == "cmp":
            walk_expr(node[2])
            walk_expr(node[3])
        elif kind == "not":
            walk_bool(node[1])
        elif kind in ("and", "or"):
            walk_bool(node[1])
            walk_bool(node[2])

    def walk_block(body: List[list]) -> None:
        for node in body:
            kind = node[0]
            if kind == "local":
                walk_expr(node[4])
            elif kind == "assign":
                variables.add(node[1])
                walk_expr(node[2])
            elif kind == "if":
                walk_bool(node[1])
                walk_block(node[2])
                walk_block(node[3])
            elif kind in ("settrue", "setfalse"):
                conditions.add(node[1])
            elif kind == "writeport":
                ports.add(node[1])
                walk_expr(node[2])

    for routine in spec.routines.values():
        walk_block(routine.body)
    for transition in spec.transitions:
        if transition.guard is not None:
            conditions.add(transition.guard[0])
    return variables, conditions, ports


# ---------------------------------------------------------------------------
# single-removal candidates
# ---------------------------------------------------------------------------

def _drop_state(spec: ChartSpec, name: str) -> bool:
    """Remove state *name* (with its subtree) in place; False if not
    removable (it is the last top-level state)."""
    doomed = {name}

    def collect(state: StateSpec) -> None:
        doomed.add(state.name)
        for child in state.children:
            collect(child)

    def prune(container: StateSpec) -> bool:
        for index, child in enumerate(container.children):
            if child.name == name:
                collect(child)
                del container.children[index]
                if not container.children and container is not spec.root:
                    container.kind = "basic"
                    container.default = None
                elif container.kind == "and" and len(container.children) < 2:
                    container.kind = "or"
                if container.default in doomed:
                    container.default = (container.children[0].name
                                        if container.children else None)
                return True
            if prune(child):
                return True
        return False

    if len(spec.root.children) == 1 and spec.root.children[0].name == name:
        return False
    if not prune(spec.root):
        return False
    spec.transitions = [t for t in spec.transitions
                        if t.source not in doomed and t.target not in doomed]
    return True


def shrink_candidates(spec: ChartSpec) -> Iterator[ChartSpec]:
    """Every spec reachable from *spec* by one removal, cheapest first."""
    # 1. drop one transition
    for index in range(len(spec.transitions)):
        candidate = _copy(spec)
        del candidate.transitions[index]
        yield candidate

    # 2. detach one routine (keep the transition)
    for index, transition in enumerate(spec.transitions):
        if transition.routine is None:
            continue
        candidate = _copy(spec)
        name = candidate.transitions[index].routine
        candidate.transitions[index] = replace(candidate.transitions[index],
                                               routine=None)
        if not any(t.routine == name for t in candidate.transitions):
            candidate.routines.pop(name, None)
        yield candidate

    # 3. drop one action statement
    for routine_name, routine in spec.routines.items():
        for path in list(_stmt_paths(routine.body)):
            candidate = _copy(spec)
            block = _resolve_block(candidate.routines[routine_name].body,
                                   path)
            del block[path[-1]]
            yield candidate

    # 4. drop one state (subtree + touching transitions)
    for state in spec.states():
        candidate = _copy(spec)
        if _drop_state(candidate, state.name):
            yield candidate

    # 5. drop unused declarations
    used_vars, used_conds, used_ports = _used_names(spec)
    for index, variable in enumerate(spec.variables):
        if variable.name not in used_vars:
            candidate = _copy(spec)
            del candidate.variables[index]
            yield candidate
    for index, (cond_name, _) in enumerate(spec.conditions):
        if cond_name not in used_conds:
            candidate = _copy(spec)
            del candidate.conditions[index]
            yield candidate
    for index, port in enumerate(spec.ports):
        if port not in used_ports:
            candidate = _copy(spec)
            del candidate.ports[index]
            yield candidate
    for routine_name in spec.routines:
        if not any(t.routine == routine_name for t in spec.transitions):
            candidate = _copy(spec)
            del candidate.routines[routine_name]
            yield candidate


def shrink_spec(spec: ChartSpec,
                predicate: Callable[[ChartSpec], bool],
                max_steps: int = 1000) -> ChartSpec:
    """Greedy single-removal fixpoint: the returned spec still satisfies
    *predicate* but no one further removal does.

    A predicate that raises counts as False — shrinking must never swap
    the original divergence for a new crash.
    """
    current = spec
    for _ in range(max_steps):
        for candidate in shrink_candidates(current):
            try:
                keep = bool(predicate(candidate))
            except Exception:  # noqa: BLE001 — crashes are rejections
                keep = False
            if keep:
                current = candidate
                break
        else:
            return current
    return current
