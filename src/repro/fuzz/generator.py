"""Seeded random chart generator with real action routines.

Pure ``random.Random`` — no Hypothesis at runtime — producing well-formed
hierarchical OR/AND charts whose transitions carry action routines in the
intermediate C dialect (typed variables, width-annotated arithmetic,
condition/event raises, port writes).  Every emitted chart is guaranteed to
pass ``repro lint`` error-free and to behave *identically* on every
improvement-ladder rung, which is what makes it usable as differential-
oracle input.

Cross-rung identity is not free: the TEP masks single-word arithmetic at
the **bus** width (8 or 16 bits), not at the declared type width, so an
overflowing ``uint:8`` sum yields different stored values on an 8-bit and a
16-bit machine.  The generator therefore tracks a conservative ``[lo, hi]``
interval for every expression node and only emits operations whose exact
mathematical result is representable on every rung:

* 8-bit expressions keep every intermediate value in ``[0, 255]``;
* 16-bit expressions keep every intermediate value in ``[0, 65535]``;
* subtraction is emitted only when ``lo(left) >= hi(right)`` (no borrow);
* ordered comparisons compile to a sign-flag test of a bus-width
  subtraction, so they are emitted only when both operands stay below
  half the *narrowest* bus range (``< 128`` for 8-bit expressions,
  ``< 16384`` for 16-bit ones); ``==``/``!=`` are always safe;
* division, modulo, negation, bitwise NOT and variable shift amounts are
  never emitted (their results are bus-width-dependent); shifts use small
  constant amounts with an overflow check.

Determinism-sensitive lint errors are avoided by construction: along any
chain of ancestrally-related transition sources, every transition uses a
distinct trigger event (so no enabling condition can *cover* another —
PSC201), and a routine may only ``Raise`` events with a strictly greater
declaration index than its own trigger (the trigger->raised graph is a DAG,
so no PSC204 quiescence cycle).

The generator emits an intermediate :class:`ChartSpec` — a JSON-serializable
description from which :func:`render_chart` / :func:`render_source` produce
the :class:`~repro.statechart.model.Chart` and the routine program.  The
shrinker mutates specs, the corpus stores specs, and the reference
evaluator (:mod:`repro.fuzz.reference`) executes spec routine bodies with
exact integer semantics.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.statechart.builder import ChartBuilder
from repro.statechart.model import Chart

#: value caps per expression width: every node's exact value must fit
_MAXV = {8: 255, 16: 65535}
#: ordered-comparison operand cap: |a - b| must stay below 2**(width-1)
_ORDERED_CAP = {8: 127, 16: 16383}


# ---------------------------------------------------------------------------
# spec dataclasses
# ---------------------------------------------------------------------------

@dataclass
class VarSpec:
    """A global (or local) variable with its range invariant ``[0, cap]``."""

    name: str
    width: int          # 8 or 16
    cap: int            # inclusive maximum (2**k - 1)
    init: int

    def to_json(self) -> Dict[str, int]:
        return {"name": self.name, "width": self.width,
                "cap": self.cap, "init": self.init}


@dataclass
class StateSpec:
    """One node of the state tree; ``kind`` is basic / or / and."""

    name: str
    kind: str
    children: List["StateSpec"] = field(default_factory=list)
    default: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.children:
            doc["children"] = [c.to_json() for c in self.children]
        if self.default is not None:
            doc["default"] = self.default
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "StateSpec":
        return cls(name=doc["name"], kind=doc["kind"],
                   children=[cls.from_json(c)
                             for c in doc.get("children", [])],
                   default=doc.get("default"))


@dataclass
class TransitionSpec:
    """source --trigger [guard]/routine()--> target."""

    source: str
    target: str
    trigger: str
    guard: Optional[Tuple[str, bool]] = None   # (condition, negated)
    routine: Optional[str] = None

    def key(self) -> Tuple[str, str, str]:
        return (self.source, self.target, self.trigger)

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"source": self.source,
                                  "target": self.target,
                                  "trigger": self.trigger}
        if self.guard is not None:
            doc["guard"] = [self.guard[0], self.guard[1]]
        if self.routine is not None:
            doc["routine"] = self.routine
        return doc

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "TransitionSpec":
        guard = doc.get("guard")
        return cls(source=doc["source"], target=doc["target"],
                   trigger=doc["trigger"],
                   guard=(guard[0], bool(guard[1])) if guard else None,
                   routine=doc.get("routine"))


@dataclass
class RoutineSpec:
    """A routine body: a list of statement nodes (JSON-friendly lists).

    Statements::

        ["local", name, width, cap, expr]
        ["assign", name, expr]
        ["if", bool, [then...], [else...]]
        ["settrue", cond] / ["setfalse", cond]
        ["raise", event]
        ["writeport", port, expr]

    Expressions::

        ["lit", v] | ["var", name] | ["readport", port]
        ["bin", op, a, b]            op in + - * & | ^
        ["shl", a, k] | ["shr", a, k]

    Booleans::

        ["test", cond] | ["cmp", op, a, b] | ["not", b]
        ["and", a, b] | ["or", a, b]
    """

    name: str
    body: List[list] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        # deep-copy so serialized documents never alias the live body
        # lists — the shrinker mutates candidate copies in place
        return {"name": self.name, "body": copy.deepcopy(self.body)}

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "RoutineSpec":
        return cls(name=doc["name"], body=copy.deepcopy(doc["body"]))


@dataclass
class ChartSpec:
    """Everything needed to render one fuzz chart + its routine program."""

    name: str
    events: List[str]
    conditions: List[Tuple[str, bool]]      # (name, initial)
    ports: List[str]
    root: StateSpec                          # virtual container (not emitted)
    transitions: List[TransitionSpec]
    variables: List[VarSpec]
    routines: Dict[str, RoutineSpec]
    seed: Optional[int] = None

    # -- queries -----------------------------------------------------------
    def states(self) -> List[StateSpec]:
        """All real states (virtual root excluded) in tree preorder."""
        out: List[StateSpec] = []

        def walk(state: StateSpec) -> None:
            out.append(state)
            for child in state.children:
                walk(child)

        for child in self.root.children:
            walk(child)
        return out

    def state_names(self) -> List[str]:
        return [s.name for s in self.states()]

    def parent_map(self) -> Dict[str, Optional[str]]:
        parents: Dict[str, Optional[str]] = {}

        def walk(state: StateSpec, parent: Optional[str]) -> None:
            parents[state.name] = parent
            for child in state.children:
                walk(child, state.name)

        for child in self.root.children:
            walk(child, None)
        return parents

    # -- serialization -----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": list(self.events),
            "conditions": [[n, bool(i)] for n, i in self.conditions],
            "ports": list(self.ports),
            "root": self.root.to_json(),
            "transitions": [t.to_json() for t in self.transitions],
            "variables": [v.to_json() for v in self.variables],
            "routines": [self.routines[name].to_json()
                         for name in self.routines],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "ChartSpec":
        routines = {r["name"]: RoutineSpec.from_json(r)
                    for r in doc.get("routines", [])}
        return cls(
            name=doc["name"],
            seed=doc.get("seed"),
            events=list(doc["events"]),
            conditions=[(n, bool(i)) for n, i in doc["conditions"]],
            ports=list(doc["ports"]),
            root=StateSpec.from_json(doc["root"]),
            transitions=[TransitionSpec.from_json(t)
                         for t in doc["transitions"]],
            variables=[VarSpec(**v) for v in doc["variables"]],
            routines=routines,
        )


def spec_to_json(spec: ChartSpec) -> Dict[str, object]:
    return spec.to_json()


def spec_from_json(doc: Dict[str, object]) -> ChartSpec:
    return ChartSpec.from_json(doc)


# ---------------------------------------------------------------------------
# rendering: spec -> Chart / routine source / labels
# ---------------------------------------------------------------------------

def render_label(transition: TransitionSpec) -> str:
    label = transition.trigger
    if transition.guard is not None:
        condition, negated = transition.guard
        label += f" [{'not ' if negated else ''}{condition}]"
    if transition.routine is not None:
        label += f"/{transition.routine}()"
    return label


def render_chart(spec: ChartSpec) -> Chart:
    """Build the :class:`Chart`; transitions are added grouped by source in
    tree preorder so ``parse(emit_chart(chart))`` preserves every
    ``Transition.index`` (the priority tie-breaker)."""
    builder = ChartBuilder(spec.name)
    for event in spec.events:
        builder.event(event)
    for condition, initial in spec.conditions:
        builder.condition(condition, initial=initial)
    for port in spec.ports:
        from repro.statechart.model import PortDirection, PortKind

        builder.port(port, PortKind.DATA, width=8,
                     direction=PortDirection.BIDIRECTIONAL)

    def emit(state: StateSpec) -> None:
        if state.kind == "basic":
            builder.basic(state.name)
        elif state.kind == "or":
            with builder.or_state(state.name, default=state.default):
                for child in state.children:
                    emit(child)
        elif state.kind == "and":
            with builder.and_state(state.name):
                for child in state.children:
                    emit(child)
        else:  # pragma: no cover - spec corruption
            raise ValueError(f"unknown state kind {state.kind!r}")

    for child in spec.root.children:
        emit(child)

    order = {name: index for index, name in enumerate(spec.state_names())}
    for transition in sorted(
            spec.transitions,
            key=lambda t: order.get(t.source, len(order))):
        builder._pending.append((transition.source, transition.target,
                                 render_label(transition), None))
    return builder.build(validate=False)


def _render_expr(node: list) -> str:
    kind = node[0]
    if kind == "lit":
        return str(node[1])
    if kind == "var":
        return node[1]
    if kind == "readport":
        return f"ReadPort({node[1]})"
    if kind == "bin":
        return f"({_render_expr(node[2])} {node[1]} {_render_expr(node[3])})"
    if kind == "shl":
        return f"({_render_expr(node[1])} << {node[2]})"
    if kind == "shr":
        return f"({_render_expr(node[1])} >> {node[2]})"
    raise ValueError(f"unknown expr node {node!r}")


def _render_bool(node: list) -> str:
    kind = node[0]
    if kind == "test":
        return f"Test({node[1]})"
    if kind == "cmp":
        return f"({_render_expr(node[2])} {node[1]} {_render_expr(node[3])})"
    if kind == "not":
        return f"(!{_render_bool(node[1])})"
    if kind in ("and", "or"):
        op = "&&" if kind == "and" else "||"
        return f"({_render_bool(node[1])} {op} {_render_bool(node[2])})"
    raise ValueError(f"unknown bool node {node!r}")


def _render_stmt(node: list, indent: str) -> List[str]:
    kind = node[0]
    if kind == "local":
        _, name, width, _cap, expr = node
        return [f"{indent}uint:{width} {name} = {_render_expr(expr)};"]
    if kind == "assign":
        return [f"{indent}{node[1]} = {_render_expr(node[2])};"]
    if kind == "if":
        lines = [f"{indent}if ({_render_bool(node[1])}) {{"]
        for stmt in node[2]:
            lines += _render_stmt(stmt, indent + "  ")
        if node[3]:
            lines.append(f"{indent}}} else {{")
            for stmt in node[3]:
                lines += _render_stmt(stmt, indent + "  ")
        lines.append(f"{indent}}}")
        return lines
    if kind == "settrue":
        return [f"{indent}SetTrue({node[1]});"]
    if kind == "setfalse":
        return [f"{indent}SetFalse({node[1]});"]
    if kind == "raise":
        return [f"{indent}Raise({node[1]});"]
    if kind == "writeport":
        return [f"{indent}WritePort({node[1]}, {_render_expr(node[2])});"]
    raise ValueError(f"unknown stmt node {node!r}")


def render_source(spec: ChartSpec) -> str:
    """Render the routine program in the intermediate C dialect."""
    lines: List[str] = []
    for variable in spec.variables:
        lines.append(f"uint:{variable.width} {variable.name} = "
                     f"{variable.init};")
    if spec.variables:
        lines.append("")
    for name in spec.routines:
        routine = spec.routines[name]
        lines.append(f"void {routine.name}() {{")
        for stmt in routine.body:
            lines += _render_stmt(stmt, "  ")
        lines.append("}")
        lines.append("")
    if not spec.routines:
        lines.append("void FuzzNop() { }")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# generation config
# ---------------------------------------------------------------------------

@dataclass
class GeneratorConfig:
    """Size/feature knobs; defaults keep a chart CI-sized (~4-14 states)."""

    min_events: int = 2
    max_events: int = 4
    min_conditions: int = 1
    max_conditions: int = 3
    min_ports: int = 1
    max_ports: int = 2
    min_top: int = 1
    max_top: int = 3
    max_depth: int = 2
    max_states: int = 14
    max_extra_transitions: int = 4
    p_guard: float = 0.5
    p_action: float = 0.8
    #: False renders every routine as an empty body (chart-shape-only mode,
    #: used by the Hypothesis property test's effect-free variant)
    effects: bool = True
    max_statements: int = 4
    max_expr_depth: int = 3
    p_sixteen_bit: float = 0.6


# ---------------------------------------------------------------------------
# expression / statement generation with range tracking
# ---------------------------------------------------------------------------

class _RoutineGen:
    """Generates one routine body under the cross-rung safety invariants."""

    def __init__(self, rng: random.Random, config: GeneratorConfig,
                 variables: Sequence[VarSpec], conditions: Sequence[str],
                 events: Sequence[str], ports: Sequence[str],
                 trigger_index: int, local_prefix: str) -> None:
        self.rng = rng
        self.config = config
        self.conditions = list(conditions)
        self.events = list(events)
        self.ports = list(ports)
        self.trigger_index = trigger_index
        self.local_prefix = local_prefix
        #: visible integer variables: name -> (width, lo, hi)
        self.env: Dict[str, Tuple[int, int, int]] = {
            v.name: (v.width, 0, v.cap) for v in variables}
        self._local_count = 0

    # -- expressions -------------------------------------------------------
    def _leaf(self, width: int) -> Tuple[list, int, int]:
        rng = self.rng
        choices = ["lit"]
        vars_of_width = [name for name, (w, _, _) in self.env.items()
                         if w == width]
        if vars_of_width:
            choices += ["var", "var"]      # prefer variables over literals
        if width == 8 and self.ports:
            choices.append("readport")
        kind = rng.choice(choices)
        if kind == "var":
            name = rng.choice(vars_of_width)
            _, lo, hi = self.env[name]
            return ["var", name], lo, hi
        if kind == "readport":
            return ["readport", rng.choice(self.ports)], 0, 255
        cap = 63 if width == 8 else 8191
        value = rng.randint(0, cap)
        return ["lit", value], value, value

    def expr(self, width: int, depth: int) -> Tuple[list, int, int]:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self._leaf(width)
        maxv = _MAXV[width]
        if rng.random() < 0.2:
            # constant shift of a single child
            child, lo, hi = self.expr(width, depth - 1)
            amount = rng.randint(1, 3)
            if rng.random() < 0.5 and (hi << amount) <= maxv:
                return ["shl", child, amount], lo << amount, hi << amount
            return ["shr", child, amount], lo >> amount, hi >> amount
        a, la, ha = self.expr(width, depth - 1)
        b, lb, hb = self.expr(width, depth - 1)
        or_hi = (1 << max(ha.bit_length(), hb.bit_length())) - 1
        candidates: List[Tuple[str, int, int]] = [
            ("&", 0, min(ha, hb)),
            ("|", max(la, lb), or_hi),
            ("^", 0, or_hi),
        ]
        if ha + hb <= maxv:
            candidates.append(("+", la + lb, ha + hb))
        if la >= hb:
            candidates.append(("-", la - hb, ha - lb))
        if ha * hb <= maxv:
            candidates.append(("*", la * lb, ha * hb))
        op, lo, hi = rng.choice(candidates)
        return ["bin", op, a, b], lo, hi

    def coerced(self, width: int, cap: int, depth: int) -> list:
        """An expression whose value provably fits ``[0, cap]``."""
        node, _, hi = self.expr(width, depth)
        if hi <= cap:
            return node
        return ["bin", "&", node, ["lit", cap]]

    # -- booleans ----------------------------------------------------------
    def _simple_leaf(self, width: int) -> list:
        """A variable or literal leaf — never ``ReadPort`` — so the operand
        stays ``is_simple`` for the comparator pattern matcher."""
        rng = self.rng
        vars_of_width = [name for name, (w, _, _) in self.env.items()
                         if w == width]
        if vars_of_width and rng.random() < 0.7:
            return ["var", rng.choice(vars_of_width)]
        return ["lit", rng.randint(0, 63 if width == 8 else 8191)]

    def cmp_simple(self) -> list:
        """A bare ``a == b`` / ``a != b`` between simple same-width leaves —
        exactly the shape ``find_comparator_sites`` promotes to comparator
        hardware, so the ladder's ``patterns`` rung gets exercised."""
        rng = self.rng
        widths = sorted({w for w, _, _ in self.env.values()} | {8})
        width = rng.choice(widths)
        return ["cmp", rng.choice(["==", "!="]),
                self._simple_leaf(width), self._simple_leaf(width)]

    def boolean(self, depth: int) -> list:
        rng = self.rng
        roll = rng.random()
        if depth > 0 and roll < 0.25:
            return ["not", self.boolean(depth - 1)]
        if depth > 0 and roll < 0.45:
            kind = "and" if rng.random() < 0.5 else "or"
            return [kind, self.boolean(depth - 1), self.boolean(depth - 1)]
        if self.conditions and roll < 0.65:
            return ["test", rng.choice(self.conditions)]
        widths = sorted({w for w, _, _ in self.env.values()} | {8})
        width = rng.choice(widths)
        a, _, ha = self.expr(width, depth)
        b, _, hb = self.expr(width, depth)
        cap = _ORDERED_CAP[width]
        ops = ["==", "!="]
        if ha <= cap and hb <= cap:
            ops += ["<", "<=", ">", ">="]
        return ["cmp", rng.choice(ops), a, b]

    # -- statements --------------------------------------------------------
    def _writable(self) -> List[str]:
        return sorted(self.env)

    def statement(self, depth: int) -> list:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35:
            name = rng.choice(self._writable())
            width, _, cap = (self.env[name][0], self.env[name][1],
                             self.env[name][2])
            return ["assign", name,
                    self.coerced(width, cap, self.config.max_expr_depth)]
        if roll < 0.55 and depth < 2:
            then_branch = [self.statement(depth + 1)
                           for _ in range(rng.randint(1, 2))]
            else_branch = ([self.statement(depth + 1)]
                           if rng.random() < 0.5 else [])
            cond = (self.cmp_simple() if rng.random() < 0.4
                    else self.boolean(2))
            return ["if", cond, then_branch, else_branch]
        if roll < 0.70 and self.conditions:
            kind = "settrue" if rng.random() < 0.5 else "setfalse"
            return [kind, rng.choice(self.conditions)]
        if roll < 0.80:
            raisable = self.events[self.trigger_index + 1:]
            if raisable:
                return ["raise", rng.choice(raisable)]
        if self.ports:
            port = rng.choice(self.ports)
            return ["writeport", port,
                    self.coerced(8, 255, self.config.max_expr_depth)]
        name = rng.choice(self._writable())
        width, _, cap = (self.env[name][0], self.env[name][1],
                         self.env[name][2])
        return ["assign", name,
                self.coerced(width, cap, self.config.max_expr_depth)]

    def body(self) -> List[list]:
        rng = self.rng
        statements: List[list] = []
        for _ in range(rng.randint(0, 2)):
            width = 16 if (rng.random() < 0.3 and any(
                w == 16 for w, _, _ in self.env.values())) else 8
            cap = ((1 << rng.randint(4, 6)) - 1 if width == 8
                   else (1 << rng.randint(8, 13)) - 1)
            name = f"{self.local_prefix}t{self._local_count}"
            self._local_count += 1
            statements.append(
                ["local", name, width, cap,
                 self.coerced(width, cap, self.config.max_expr_depth)])
            self.env[name] = (width, 0, cap)
        for _ in range(rng.randint(1, self.config.max_statements)):
            statements.append(self.statement(0))
        return statements


# ---------------------------------------------------------------------------
# chart generation
# ---------------------------------------------------------------------------

def _make_tree(rng: random.Random, config: GeneratorConfig
               ) -> Tuple[StateSpec, List[StateSpec]]:
    """The state tree (virtual root + units) plus the list of OR scopes."""
    counter = [0]

    def next_name() -> str:
        counter[0] += 1
        return f"S{counter[0] - 1}"

    remaining = [rng.randint(4, config.max_states)]

    def make_state(depth: int, force_composite: bool = False) -> StateSpec:
        name = next_name()
        remaining[0] -= 1
        can_or = depth < config.max_depth and remaining[0] >= 2
        can_and = depth < config.max_depth and remaining[0] >= 6
        roll = rng.random()
        if can_and and (roll < 0.25 or (force_composite and roll < 0.5)):
            regions = []
            for _ in range(2):
                region_name = next_name()
                remaining[0] -= 1
                n_basic = rng.randint(2, 3)
                kids = []
                for _ in range(n_basic):
                    kids.append(StateSpec(next_name(), "basic"))
                    remaining[0] -= 1
                regions.append(StateSpec(region_name, "or", kids,
                                         kids[0].name))
            return StateSpec(name, "and", regions)
        if can_or and (roll < 0.80 or force_composite):
            n_children = rng.randint(2, 3)
            kids = [make_state(depth + 1) for _ in range(n_children)]
            return StateSpec(name, "or", kids, kids[0].name)
        return StateSpec(name, "basic")

    n_top = rng.randint(config.min_top, config.max_top)
    units = [make_state(0, force_composite=(n_top == 1))
             for _ in range(n_top)]
    root = StateSpec("__top__", "or", units,
                     units[0].name if units else None)

    scopes: List[StateSpec] = []

    def collect(state: StateSpec) -> None:
        if state.kind == "or" and len(state.children) >= 2:
            scopes.append(state)
        for child in state.children:
            collect(child)

    if len(root.children) >= 2:
        scopes.append(root)
    for unit in root.children:
        collect(unit)
    return root, scopes


def _chain_events(spec_transitions: Sequence[TransitionSpec], source: str,
                  parents: Dict[str, Optional[str]],
                  descendants: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
    """Trigger events already used along *source*'s ancestor/descendant
    chain (the PSC201 exclusion set)."""
    chain = {source}
    node = parents.get(source)
    while node is not None:
        chain.add(node)
        node = parents.get(node)
    chain |= descendants.get(source, frozenset())
    return frozenset(t.trigger for t in spec_transitions
                     if t.source in chain)


def generate_spec(seed: int,
                  config: Optional[GeneratorConfig] = None) -> ChartSpec:
    """Generate one seeded chart spec (deterministic in *seed*)."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)

    n_events = rng.randint(config.min_events, config.max_events)
    events = [f"E{i}" for i in range(n_events)]
    n_conditions = rng.randint(config.min_conditions, config.max_conditions)
    conditions = [(f"C{i}", rng.random() < 0.5)
                  for i in range(n_conditions)]
    n_ports = rng.randint(config.min_ports, config.max_ports)
    ports = [f"P{i}" for i in range(n_ports)]

    variables: List[VarSpec] = []
    for i in range(rng.randint(1, 3)):
        cap = (1 << rng.randint(4, 6)) - 1
        variables.append(VarSpec(f"g{i}", 8, cap, rng.randint(0, cap)))
    if rng.random() < config.p_sixteen_bit:
        for i in range(rng.randint(1, 2)):
            cap = (1 << rng.randint(8, 13)) - 1
            variables.append(VarSpec(f"h{i}", 16, cap, rng.randint(0, cap)))

    root, scopes = _make_tree(rng, config)
    spec = ChartSpec(name=f"fuzz{seed}", events=events,
                     conditions=conditions, ports=ports, root=root,
                     transitions=[], variables=variables, routines={},
                     seed=seed)
    parents = spec.parent_map()
    all_states = spec.states()
    descendants: Dict[str, FrozenSet[str]] = {}

    def collect_descendants(state: StateSpec) -> FrozenSet[str]:
        names = set()
        for child in state.children:
            names.add(child.name)
            names |= collect_descendants(child)
        descendants[state.name] = frozenset(names)
        return descendants[state.name]

    for unit in root.children:
        collect_descendants(unit)

    event_index = {name: i for i, name in enumerate(events)}

    def attach_routine(transition: TransitionSpec) -> None:
        if rng.random() >= config.p_action:
            return
        name = f"Act{len(spec.routines)}"
        if config.effects:
            gen = _RoutineGen(rng, config, variables,
                              [c for c, _ in conditions], events, ports,
                              event_index[transition.trigger],
                              local_prefix=f"{name}_")
            spec.routines[name] = RoutineSpec(name, gen.body())
        else:
            spec.routines[name] = RoutineSpec(name, [])
        transition.routine = name

    def add_transition(source: str, target: str) -> bool:
        used = _chain_events(spec.transitions, source, parents, descendants)
        free = [e for e in events if e not in used]
        if not free:
            return False
        transition = TransitionSpec(source, target, rng.choice(free))
        if rng.random() < config.p_guard:
            condition, _ = conditions[rng.randrange(len(conditions))]
            transition.guard = (condition, rng.random() < 0.5)
        attach_routine(transition)
        spec.transitions.append(transition)
        return True

    # ring transitions keep every sibling reachable
    for scope in scopes:
        children = scope.children
        for i, child in enumerate(children):
            add_transition(child.name,
                           children[(i + 1) % len(children)].name)

    # extra edges: self-loops, cross-hierarchy jumps, composite targets
    names = [s.name for s in all_states]
    ancestor_sets = {}
    for name in names:
        chain = set()
        node = parents.get(name)
        while node is not None:
            chain.add(node)
            node = parents.get(node)
        ancestor_sets[name] = chain
    for _ in range(rng.randint(0, config.max_extra_transitions)):
        source = rng.choice(names)
        candidates = [n for n in names
                      if n not in ancestor_sets[source]]
        if not candidates:
            continue
        add_transition(source, rng.choice(candidates))

    return spec


# ---------------------------------------------------------------------------
# event traces
# ---------------------------------------------------------------------------

def event_trace(seed: int, events: Sequence[str],
                cycles: int) -> List[FrozenSet[str]]:
    """A seeded external-event trace: quiet cycles, single events and
    occasional simultaneous pairs."""
    rng = random.Random(seed)
    trace: List[FrozenSet[str]] = []
    pool = list(events)
    for _ in range(cycles):
        roll = rng.random()
        if not pool or roll < 0.30:
            trace.append(frozenset())
        elif roll < 0.85 or len(pool) == 1:
            trace.append(frozenset([rng.choice(pool)]))
        else:
            trace.append(frozenset(rng.sample(pool, 2)))
    return trace
