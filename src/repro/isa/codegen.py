"""Code generation: intermediate C → TEP assembler.

The generator targets the accumulator architecture of section 3.2.  Because
recursion is banned, every function's parameters, locals, temporaries and
return slot live at *static* addresses — the standard technique of the era's
microcontroller compilers, and the reason the paper can derive transition
timings directly from the assembler code.

Values wider than the data bus are handled as little-endian word groups
(an ``int:16`` on the 8-bit basic TEP is two words); arithmetic chains the
carry (``ADC``/``SBC``/``RCL``).  This is where the Table 4 jump from the
8-bit minimal TEP to the 16-bit M/D TEP comes from: the same source compiles
to half the instructions on the wider bus.

Architecture-dependent choices made here:

* ``MUL``/``DIV``/``MOD`` instructions on an M/D calculation unit (operand
  width permitting) vs. calls into generated shift-add runtime routines;
* fused ``CBEQ``/``CBNE`` compare-branches when the comparator ALU style is
  present;
* single ``NEG`` when the two's-complement ALU style is present, else
  ``NOT``+``INC`` chains;
* ``CUSTOM`` instructions for expressions whose signature matches one of the
  architecture's selected custom instructions;
* storage classes per variable (register / internal / external), overridable
  by the improvement loop's promotion ladder.

The output per function is a :class:`CodeObject`: the instruction list plus
the structural WCET tree of :mod:`repro.isa.cost`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.action.ast import (
    ArrayType,
    Assign,
    Binary,
    BinOp,
    BoolLiteral,
    BoolType,
    Call,
    COMPARISONS,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    If,
    Index,
    IntLiteral,
    IntType,
    NameRef,
    Return,
    Stmt,
    StructType,
    Type,
    Unary,
    UnOp,
    VarDecl,
    VoidType,
    While,
    type_width,
)
from repro.action.check import CheckedProgram
from repro.action.stdlib import is_builtin
from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.cost import Block, Branch, CallCost, CostNode, FixedCost, Loop, Seq
from repro.isa.isa import (
    Imm,
    Instruction,
    IsaError,
    LabelRef,
    Mem,
    Op,
    Operand,
    PortRef,
    Reg,
    SignalRef,
)
from repro.isa.patterns import (
    expression_signature,
    is_simple,
    leaf_variables,
)

#: struct types that are architecture directives, not data (section 2:
#: "these code pieces are not actually executed")
DIRECTIVE_STRUCTS = {"Port", "EventCondition", "port", "ec"}


class CodegenError(Exception):
    """Raised when source cannot be compiled for the given architecture."""


# ---------------------------------------------------------------------------
# name maps: chart signals and ports -> hardware indices
# ---------------------------------------------------------------------------

@dataclass
class NameMaps:
    """Signal indices (CR layout) and port addresses for builtins."""

    events: Dict[str, int] = field(default_factory=dict)
    conditions: Dict[str, int] = field(default_factory=dict)
    ports: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_chart(cls, chart) -> "NameMaps":
        """Enumerate the chart's signals in CR order and its ports by their
        declared addresses (auto-assigned from 0x700 when absent, echoing
        the address range of Fig. 2b)."""
        maps = cls()
        for index, name in enumerate(chart.events):
            maps.events[name] = index
        for index, name in enumerate(chart.conditions):
            maps.conditions[name] = index
        next_address = 0x700
        for port in chart.ports.values():
            if port.address is not None:
                maps.ports[port.name] = port.address
            else:
                maps.ports[port.name] = next_address
            next_address = max(next_address, maps.ports[port.name]) + 1
        return maps

    @classmethod
    def from_externals(cls, externals) -> "NameMaps":
        maps = cls()
        for index, name in enumerate(sorted(externals.events)):
            maps.events[name] = index
        for index, name in enumerate(sorted(externals.conditions)):
            maps.conditions[name] = index
        for index, name in enumerate(sorted(externals.ports)):
            maps.ports[name] = 0x700 + index
        return maps


# ---------------------------------------------------------------------------
# storage allocation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VarLoc:
    """The static location of one scalar value: one operand per bus word,
    low word first."""

    name: str
    words: Tuple[Operand, ...]
    width: int
    signed: bool = True

    @property
    def n_words(self) -> int:
        return len(self.words)

    def word(self, index: int) -> Operand:
        return self.words[index]


class Allocator:
    """Assigns static addresses in the three storage tiers.

    Defaults follow the unoptimized flow: globals in external RAM,
    everything function-local in internal RAM.  ``storage_map`` overrides
    per-variable classes (keys: ``"name"`` for globals, ``"func.name"`` for
    locals/params); the improvement ladder's Load/Store promotion step
    rewrites this map.
    """

    def __init__(self, arch: ArchConfig,
                 storage_map: Optional[Dict[str, StorageClass]] = None) -> None:
        self.arch = arch
        self.storage_map = dict(storage_map or {})
        self.next_register = 0
        self.next_internal = 0
        self.next_external = 0
        self.locations: Dict[str, VarLoc] = {}
        #: initial memory values (word address space keyed by storage class)
        self.initial_values: List[Tuple[Operand, int]] = []

    def _take(self, storage: StorageClass, words: int) -> List[Operand]:
        if storage is StorageClass.REGISTER:
            if words > 1 or self.next_register >= self.arch.register_file_size:
                # no room (or too wide) in the register file: spill to the
                # next tier silently — promotion is best-effort
                return self._take(StorageClass.INTERNAL, words)
            index = self.next_register
            self.next_register += 1
            return [Reg(index)]
        if storage is StorageClass.INTERNAL:
            if self.next_internal + words > self.arch.internal_ram_words:
                return self._take(StorageClass.EXTERNAL, words)
            base = self.next_internal
            self.next_internal += words
            return [Mem(base + i, StorageClass.INTERNAL) for i in range(words)]
        base = self.next_external
        self.next_external += words
        return [Mem(base + i, StorageClass.EXTERNAL) for i in range(words)]

    def allocate(self, qualified: str, typ: Type,
                 default: StorageClass) -> VarLoc:
        if qualified in self.locations:
            return self.locations[qualified]
        width = type_width(typ)
        words = self.arch.words_for(width)
        storage = self.storage_map.get(qualified, default)
        operands = self._take(storage, words)
        signed = getattr(typ, "signed", True)
        loc = VarLoc(qualified, tuple(operands), width, signed)
        self.locations[qualified] = loc
        return loc

    def storage_of(self, qualified: str) -> Optional[StorageClass]:
        loc = self.locations.get(qualified)
        if loc is None:
            return None
        head = loc.words[0]
        if isinstance(head, Reg):
            return StorageClass.REGISTER
        assert isinstance(head, Mem)
        return head.space


# ---------------------------------------------------------------------------
# compiled artifacts
# ---------------------------------------------------------------------------

@dataclass
class CodeObject:
    """One compiled routine."""

    name: str
    instructions: List[Instruction]
    cost: CostNode
    entry_label: str
    wcet_override: Optional[int] = None


@dataclass
class CompiledProgram:
    """All routines of a program compiled for one architecture."""

    arch: ArchConfig
    objects: Dict[str, CodeObject]
    allocator: Allocator
    maps: NameMaps
    call_order: List[str]
    #: enum member values (transition stubs resolve action arguments here)
    enum_values: Dict[str, int] = field(default_factory=dict)

    def wcets(self) -> Dict[str, int]:
        """Per-routine worst-case cycles under this program's architecture."""
        from repro.isa.cost import routine_wcets
        trees = {name: obj.cost for name, obj in self.objects.items()}
        overrides = {name: obj.wcet_override
                     for name, obj in self.objects.items()
                     if obj.wcet_override is not None}
        return routine_wcets(trees, self.call_order, self.arch, overrides)

    def flat_instructions(self) -> List[Instruction]:
        result: List[Instruction] = []
        for name in self.call_order:
            result.extend(self.objects[name].instructions)
        return result


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------

class _Emitter:
    """Collects instructions and the parallel cost tree."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self._seq_stack: List[List[CostNode]] = [[]]
        self._block: Block = Block()
        self._pending_label: Optional[str] = None

    # -- instruction emission ------------------------------------------------
    def emit(self, op: Op, operand: Operand = None,
             target: Optional[LabelRef] = None, comment: str = "") -> Instruction:
        instruction = Instruction(op, operand, target,
                                  self._pending_label, comment)
        self._pending_label = None
        # emission-time store/load cleanup: STA x; LDA x -> drop the load
        if (op is Op.LDA and instruction.label is None
                and self.instructions
                and self.instructions[-1].op is Op.STA
                and self.instructions[-1].operand == operand
                and self._block.instructions
                and self._block.instructions[-1] is self.instructions[-1]):
            return self.instructions[-1]
        self.instructions.append(instruction)
        self._block.instructions.append(instruction)
        return instruction

    def place_label(self, label: str) -> None:
        if self._pending_label is not None:
            # two labels on one spot: emit a NOP to carry the first
            self.emit(Op.NOP)
        # emission-time jump cleanup: JMP L directly before placing L
        if (self.instructions and self.instructions[-1].op is Op.JMP
                and isinstance(self.instructions[-1].operand, LabelRef)
                and self.instructions[-1].operand.name == label
                and self.instructions[-1].label is None
                and self._block.instructions
                and self._block.instructions[-1] is self.instructions[-1]):
            dead = self.instructions.pop()
            self._block.instructions.pop()
        self._pending_label = label

    def flush_label(self) -> None:
        """Materialize a pending label onto a NOP (end-of-routine labels)."""
        if self._pending_label is not None:
            self.emit(Op.NOP)

    # -- cost tree -------------------------------------------------------------
    def cut_block(self) -> Block:
        """Close the current block, push it to the sequence, start fresh."""
        finished = self._block
        if finished.instructions:
            self._seq_stack[-1].append(finished)
        self._block = Block()
        return finished

    def push_node(self, node: CostNode) -> None:
        self.cut_block()
        self._seq_stack[-1].append(node)

    def open_seq(self) -> None:
        self.cut_block()
        self._seq_stack.append([])

    def close_seq(self) -> CostNode:
        self.cut_block()
        parts = self._seq_stack.pop()
        return Seq(parts)

    def finish(self) -> CostNode:
        self.flush_label()
        self.cut_block()
        assert len(self._seq_stack) == 1
        return Seq(self._seq_stack[0])


class CodeGenerator:
    """Compiles a checked program for one architecture."""

    def __init__(
        self,
        checked: CheckedProgram,
        arch: ArchConfig,
        maps: Optional[NameMaps] = None,
        storage_map: Optional[Dict[str, StorageClass]] = None,
    ) -> None:
        self.checked = checked
        self.program = checked.program
        self.arch = arch
        self.maps = maps or NameMaps.from_externals(checked.externals)
        self.allocator = Allocator(arch, storage_map)
        self._labels = itertools.count()
        self._enum_values: Dict[str, int] = {}
        for enum_type in self._all_enums():
            for member in enum_type.members:
                self._enum_values.setdefault(member, enum_type.value_of(member))
        self._globals_allocated = False
        self._current: Optional[Function] = None
        self._emitter: Optional[_Emitter] = None
        self._temp_free: List[VarLoc] = []
        self._temp_count = 0

    # ------------------------------------------------------------------
    def _all_enums(self):
        seen = []
        for enum_type in self.program.enums:
            seen.append(enum_type)
        for _, typ in self.program.typedefs:
            if isinstance(typ, EnumType):
                seen.append(typ)
        return seen

    def new_label(self, hint: str) -> str:
        return f".{hint}{next(self._labels)}"

    # -- allocation ----------------------------------------------------------
    def _allocate_globals(self) -> None:
        if self._globals_allocated:
            return
        self._globals_allocated = True
        for gvar in self.program.globals:
            if (isinstance(gvar.typ, StructType)
                    and gvar.typ.name in DIRECTIVE_STRUCTS):
                continue  # architecture directive, not data
            loc = self.allocator.allocate(gvar.name, gvar.typ,
                                          StorageClass.EXTERNAL)
            if gvar.init is not None:
                value = self._const_value(gvar.init)
                self._record_initial(loc, value)

    def _record_initial(self, loc: VarLoc, value: int) -> None:
        mask = (1 << self.arch.data_width) - 1
        for index, operand in enumerate(loc.words):
            word = (value >> (index * self.arch.data_width)) & mask
            self.allocator.initial_values.append((operand, word))

    def _const_value(self, expr: Expr) -> int:
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return int(expr.value)
        if isinstance(expr, NameRef) and expr.name in self._enum_values:
            return self._enum_values[expr.name]
        if isinstance(expr, Unary) and expr.op is UnOp.NEG:
            return -self._const_value(expr.operand)
        if isinstance(expr, Binary):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            folds = {BinOp.ADD: lambda: left + right,
                     BinOp.SUB: lambda: left - right,
                     BinOp.MUL: lambda: left * right,
                     BinOp.SHL: lambda: left << right,
                     BinOp.SHR: lambda: left >> right,
                     BinOp.AND: lambda: left & right,
                     BinOp.OR: lambda: left | right,
                     BinOp.XOR: lambda: left ^ right}
            if expr.op in folds:
                return folds[expr.op]()
        raise CodegenError(f"global initializer must be constant: {expr}")

    def _qualify(self, name: str) -> str:
        assert self._current is not None
        return f"{self._current.name}.{name}"

    def _local_loc(self, name: str, typ: Type) -> VarLoc:
        return self.allocator.allocate(self._qualify(name), typ,
                                       StorageClass.INTERNAL)

    def _lookup_var(self, name: str) -> Optional[VarLoc]:
        qualified = self._qualify(name)
        if qualified in self.allocator.locations:
            return self.allocator.locations[qualified]
        if name in self.allocator.locations:
            return self.allocator.locations[name]
        return None

    # -- temps -------------------------------------------------------------
    def _alloc_temp(self, words: int) -> VarLoc:
        for index, temp in enumerate(self._temp_free):
            if temp.n_words >= words:
                self._temp_free.pop(index)
                return temp
        self._temp_count += 1
        name = f"{self._current.name}.__t{self._temp_count}"
        width = words * self.arch.data_width
        return self.allocator.allocate(name, IntType(min(width, 64)),
                                       StorageClass.INTERNAL)

    def _free_temp(self, temp: VarLoc) -> None:
        self._temp_free.append(temp)

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def compile(self) -> CompiledProgram:
        self._allocate_globals()
        objects: Dict[str, CodeObject] = {}
        for name in self.checked.call_order:
            function = self.program.function(name)
            objects[name] = self._compile_function(function)
        return CompiledProgram(self.arch, objects, self.allocator,
                               self.maps, list(self.checked.call_order),
                               dict(self._enum_values))

    def _compile_function(self, function: Function) -> CodeObject:
        self._current = function
        self._temp_free = []
        emitter = _Emitter()
        self._emitter = emitter

        # static frame: parameters and return slot
        for param in function.params:
            self._local_loc(param.name, param.typ)
        if not isinstance(function.return_type, VoidType):
            self._local_loc("__ret", function.return_type)

        emitter.place_label(function.name)
        for stmt in function.body:
            self._gen_stmt(stmt)
        emitter.flush_label()
        emitter.emit(Op.RET, comment=f"end of {function.name}")
        cost = emitter.finish()
        self._current = None
        self._emitter = None
        return CodeObject(function.name, emitter.instructions, cost,
                          function.name, function.wcet_override)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _gen_stmt(self, stmt: Stmt) -> None:
        e = self._emitter
        assert e is not None
        if isinstance(stmt, VarDecl):
            loc = self._local_loc(stmt.name, stmt.typ)
            if stmt.init is not None:
                self._gen_into(stmt.init, loc)
        elif isinstance(stmt, Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, If):
            self._gen_if(stmt)
        elif isinstance(stmt, While):
            self._gen_while(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                ret = self._lookup_var("__ret")
                assert ret is not None
                self._gen_into(stmt.value, ret)
            e.emit(Op.RET, comment="return")
        elif isinstance(stmt, ExprStmt):
            self._gen_expr_for_effect(stmt.expr)
        else:  # pragma: no cover
            raise CodegenError(f"unknown statement {stmt!r}")

    def _gen_assign(self, stmt: Assign) -> None:
        value: Expr = stmt.value
        if stmt.op is not None:
            value = Binary(stmt.op, stmt.target, stmt.value)
            value.typ = stmt.target.typ or stmt.value.typ
        target = stmt.target
        if isinstance(target, NameRef):
            loc = self._lookup_var(target.name)
            if loc is not None:
                self._gen_into(value, loc)
                return
            if target.name in self.maps.ports:
                self._gen_into_acc(value)
                self._emitter.emit(Op.OUTP, PortRef(self.maps.ports[target.name]),
                                   comment=f"{target.name} <- ACC")
                return
            if target.name in self.maps.conditions:
                raise CodegenError(
                    f"assign to condition {target.name!r}: use SetTrue/SetFalse")
            raise CodegenError(f"cannot assign to {target.name!r}")
        if isinstance(target, (FieldAccess, Index)):
            place = self._resolve_place(target)
            self._gen_into_place(value, place)
            return
        raise CodegenError(f"bad assignment target {target!r}")

    def _gen_if(self, stmt: If) -> None:
        e = self._emitter
        else_label = self.new_label("else")
        end_label = self.new_label("endif")

        e.open_seq()
        self._gen_branch_false(stmt.cond,
                               else_label if stmt.else_body else end_label)
        test = e.close_seq()

        e.open_seq()
        for s in stmt.then_body:
            self._gen_stmt(s)
        if stmt.else_body:
            e.emit(Op.JMP, LabelRef(end_label))
        then_node = e.close_seq()

        e.open_seq()
        if stmt.else_body:
            e.place_label(else_label)
            for s in stmt.else_body:
                self._gen_stmt(s)
        else_node = e.close_seq()

        e.place_label(end_label)
        e.push_node(Branch(test, then_node, else_node))

    def _gen_while(self, stmt: While) -> None:
        e = self._emitter
        loop_label = self.new_label("loop")
        end_label = self.new_label("endloop")

        e.place_label(loop_label)
        e.open_seq()
        self._gen_branch_false(stmt.cond, end_label)
        test = e.close_seq()

        e.open_seq()
        for s in stmt.body:
            self._gen_stmt(s)
        e.emit(Op.JMP, LabelRef(loop_label))
        body = e.close_seq()

        e.place_label(end_label)
        bound = stmt.bound if stmt.bound is not None else 0
        e.push_node(Loop(test, body, bound))

    # ------------------------------------------------------------------
    # places (lvalues with possibly dynamic addressing)
    # ------------------------------------------------------------------
    def _resolve_place(self, expr: Expr):
        """Resolve an lvalue to either a VarLoc (static) or a dynamic place
        (base VarLoc-like info + index expression)."""
        base, word_offset, index_expr, stride = self._peel_place(expr)
        if index_expr is None:
            words = tuple(base.words[word_offset:word_offset +
                          self.arch.words_for(type_width(expr.typ or IntType(16)))])
            if not words:
                raise CodegenError(f"field offset out of range for {expr}")
            return VarLoc(f"{base.name}+{word_offset}", words,
                          type_width(expr.typ or IntType(16)))
        return _DynamicPlace(base, word_offset, index_expr, stride,
                             self.arch.words_for(
                                 type_width(expr.typ or IntType(16))))

    def _peel_place(self, expr: Expr):
        """Return (base VarLoc, static word offset, index expr|None, stride)."""
        if isinstance(expr, NameRef):
            loc = self._lookup_var(expr.name)
            if loc is None:
                raise CodegenError(f"unknown variable {expr.name!r}")
            return loc, 0, None, 0
        if isinstance(expr, FieldAccess):
            base, offset, index_expr, stride = self._peel_place(expr.base)
            base_type = expr.base.typ
            if not isinstance(base_type, StructType):
                raise CodegenError(f"field access on non-struct: {expr}")
            field_offset = 0
            for fname, ftype in base_type.fields:
                if fname == expr.field:
                    break
                field_offset += self.arch.words_for(type_width(ftype))
            return base, offset + field_offset, index_expr, stride
        if isinstance(expr, Index):
            base, offset, index_expr, stride = self._peel_place(expr.base)
            array_type = expr.base.typ
            if not isinstance(array_type, ArrayType):
                raise CodegenError(f"indexing non-array: {expr}")
            element_words = self.arch.words_for(type_width(array_type.element))
            constant = self._try_const(expr.index)
            if constant is not None:
                return base, offset + constant * element_words, index_expr, stride
            if index_expr is not None:
                raise CodegenError(
                    "only one dynamic index per access is supported")
            return base, offset, expr.index, element_words
        raise CodegenError(f"not an lvalue: {expr}")

    def _try_const(self, expr: Expr) -> Optional[int]:
        try:
            return self._const_value(expr)
        except CodegenError:
            return None

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _width_of(self, expr: Expr) -> int:
        return type_width(expr.typ) if expr.typ is not None else 16

    def _words_of(self, expr: Expr) -> int:
        return self.arch.words_for(max(1, self._width_of(expr)))

    def _simple_operand(self, expr: Expr) -> Optional[Operand]:
        """An operand the ALU can source directly (single-word only)."""
        if isinstance(expr, IntLiteral):
            if 0 <= expr.value < (1 << self.arch.data_width):
                return Imm(expr.value)
            return None
        if isinstance(expr, BoolLiteral):
            return Imm(int(expr.value))
        if isinstance(expr, NameRef):
            if expr.name in self._enum_values:
                return Imm(self._enum_values[expr.name])
            loc = self._lookup_var(expr.name)
            if loc is not None and loc.n_words == 1:
                return loc.word(0)
        return None

    def _gen_expr_for_effect(self, expr: Expr) -> None:
        if isinstance(expr, Call):
            self._gen_call(expr, want_value=False)
            return
        # evaluate and discard (may still read a port)
        if self._words_of(expr) == 1:
            self._gen_into_acc(expr)
        else:
            temp = self._alloc_temp(self._words_of(expr))
            self._gen_into(expr, temp)
            self._free_temp(temp)

    # -- single-word path ------------------------------------------------------
    def _gen_into_acc(self, expr: Expr) -> None:
        """Evaluate a single-word expression into ACC."""
        e = self._emitter
        if self._words_of(expr) != 1:
            raise CodegenError(f"multi-word value in single-word context: {expr}")
        operand = self._simple_operand(expr)
        if operand is not None:
            e.emit(Op.LDA, operand, comment=str(expr))
            return
        if isinstance(expr, NameRef):
            name = expr.name
            if name in self.maps.conditions:
                e.emit(Op.CTST, SignalRef(self.maps.conditions[name], name))
                return
            if name in self.maps.ports:
                e.emit(Op.INP, PortRef(self.maps.ports[name]), comment=name)
                return
            raise CodegenError(f"unknown name {name!r}")
        if isinstance(expr, (FieldAccess, Index)):
            place = self._resolve_place(expr)
            self._load_place_word(place, 0)
            return
        if isinstance(expr, Unary):
            self._gen_unary_acc(expr)
            return
        if isinstance(expr, Binary):
            self._gen_binary_acc(expr)
            return
        if isinstance(expr, Call):
            self._gen_call(expr, want_value=True)
            return
        raise CodegenError(f"cannot evaluate {expr!r}")

    def _gen_unary_acc(self, expr: Unary) -> None:
        e = self._emitter
        if expr.op is UnOp.NEG:
            self._gen_into_acc(expr.operand)
            if self.arch.has_negator:
                e.emit(Op.NEG, comment="two's complement (negator ALU)")
            else:
                e.emit(Op.NOT)
                e.emit(Op.INC, comment="two's complement by NOT+INC")
            return
        if expr.op is UnOp.BNOT:
            self._gen_into_acc(expr.operand)
            e.emit(Op.NOT)
            return
        if expr.op is UnOp.LNOT:
            self._materialize_bool(expr)
            return
        raise CodegenError(f"unknown unary {expr.op}")

    _ALU_FOR_BINOP = {
        BinOp.ADD: Op.ADD, BinOp.SUB: Op.SUB, BinOp.AND: Op.AND,
        BinOp.OR: Op.ORR, BinOp.XOR: Op.XOR,
    }

    def _gen_binary_acc(self, expr: Binary) -> None:
        e = self._emitter
        if expr.op in COMPARISONS or expr.op in (BinOp.LAND, BinOp.LOR):
            self._materialize_bool(expr)
            return

        custom = self._try_custom(expr)
        if custom:
            return

        if expr.op in (BinOp.SHL, BinOp.SHR):
            self._gen_shift_acc(expr)
            return

        if expr.op in (BinOp.MUL, BinOp.DIV, BinOp.MOD):
            self._gen_muldiv(expr, single_word=True, dest=None)
            return

        alu_op = self._ALU_FOR_BINOP.get(expr.op)
        if alu_op is None:
            raise CodegenError(f"unsupported operator {expr.op}")
        right_operand = self._simple_operand(expr.right)
        if right_operand is not None:
            self._gen_into_acc(expr.left)
            e.emit(alu_op, right_operand, comment=str(expr.op.value))
            return
        temp = self._alloc_temp(1)
        self._gen_into_acc(expr.right)
        e.emit(Op.STA, temp.word(0))
        self._gen_into_acc(expr.left)
        e.emit(alu_op, temp.word(0), comment=str(expr.op.value))
        self._free_temp(temp)

    def _gen_shift_acc(self, expr: Binary) -> None:
        e = self._emitter
        amount = self._try_const(expr.right)
        if amount is None:
            # variable shift amount: runtime helper
            self._gen_runtime_shift(expr)
            return
        self._gen_into_acc(expr.left)
        op = Op.SHL if expr.op is BinOp.SHL else Op.SHR
        if amount == 0:
            return
        if self.arch.has_barrel_shifter and amount > 1:
            wide = Op.SHLN if expr.op is BinOp.SHL else Op.SHRN
            e.emit(wide, Imm(amount), comment=f"barrel shift {amount}")
            return
        for _ in range(amount):
            e.emit(op)

    def _gen_runtime_shift(self, expr: Binary,
                           dest: Optional[VarLoc] = None) -> None:
        width = 8 if self._width_of(expr) <= 8 else (
            16 if self._width_of(expr) <= 16 else 32)
        name = f"__{'shl' if expr.op is BinOp.SHL else 'shr'}{width}"
        self._gen_helper_call(name, [expr.left, expr.right], expr, dest=dest)

    def _gen_muldiv(self, expr: Binary, single_word: bool,
                    dest: Optional[VarLoc] = None) -> None:
        e = self._emitter
        width = self._width_of(expr)
        if (self.arch.has_muldiv and width <= self.arch.data_width
                and single_word):
            op = {BinOp.MUL: Op.MUL, BinOp.DIV: Op.DIV,
                  BinOp.MOD: Op.MOD}[expr.op]
            right_operand = self._simple_operand(expr.right)
            if right_operand is not None:
                self._gen_into_acc(expr.left)
                e.emit(op, right_operand, comment="M/D calculation unit")
                return
            temp = self._alloc_temp(1)
            self._gen_into_acc(expr.right)
            e.emit(Op.STA, temp.word(0))
            self._gen_into_acc(expr.left)
            e.emit(op, temp.word(0), comment="M/D calculation unit")
            self._free_temp(temp)
            return
        helper_width = 8 if width <= 8 else (16 if width <= 16 else 32)
        name = {BinOp.MUL: "mul", BinOp.DIV: "div",
                BinOp.MOD: "mod"}[expr.op]
        self._gen_helper_call(f"__{name}{helper_width}",
                              [expr.left, expr.right], expr, dest=dest)

    def _gen_helper_call(self, name: str, args: List[Expr],
                         context: Expr, dest: Optional[VarLoc] = None) -> None:
        """Call a generated runtime helper (must exist in the program)."""
        try:
            self.program.function(name)
        except KeyError:
            raise CodegenError(
                f"runtime helper {name!r} is required for {context} on "
                f"{self.arch.name}; run prepare_program() first") from None
        call = Call(name, args)
        call.typ = context.typ
        self._gen_call(call, want_value=True, dest=dest)

    def _try_custom(self, expr: Expr) -> bool:
        """Emit a CUSTOM instruction if the expression matches one."""
        if not self.arch.custom_instructions:
            return False
        if self._words_of(expr) != 1:
            return False
        signature = expression_signature(expr)
        if signature is None:
            return False
        custom = self.arch.custom_by_signature(signature)
        if custom is None:
            return False
        leaves = leaf_variables(expr)
        # non-variable leaves are baked into the unit; variables must fit
        # the datapath sources: ACC, OP, then registers
        if len(leaves) > 2 + self.arch.register_file_size:
            return False
        e = self._emitter
        index = self.arch.custom_instructions.index(custom)
        loaders = [Op.LDA, Op.LDO]
        for position, leaf in enumerate(leaves):
            operand = self._simple_operand(NameRef(leaf))
            if operand is None:
                loc = self._lookup_var(leaf)
                if loc is None or loc.n_words != 1:
                    return False
                operand = loc.word(0)
            if position < 2:
                e.emit(loaders[position], operand, comment=f"custom src {leaf}")
            else:
                e.emit(Op.LDA, operand)
                e.emit(Op.STA, Reg(position - 2))
        e.emit(Op.CUSTOM, Imm(index),
               comment=f"{custom.name}: {expr}")
        return True

    # -- bool materialization / branches ---------------------------------------
    def _materialize_bool(self, expr: Expr) -> None:
        """Leave 1 in ACC if *expr* is true else 0."""
        e = self._emitter
        false_label = self.new_label("bfalse")
        end_label = self.new_label("bend")
        self._gen_branch_false(expr, false_label)
        e.emit(Op.LDA, Imm(1))
        e.emit(Op.JMP, LabelRef(end_label))
        e.place_label(false_label)
        e.emit(Op.LDA, Imm(0))
        e.place_label(end_label)

    def _gen_branch_false(self, cond: Expr, label: str) -> None:
        """Branch to *label* when *cond* is false; fall through when true."""
        e = self._emitter
        if isinstance(cond, BoolLiteral):
            if not cond.value:
                e.emit(Op.JMP, LabelRef(label))
            return
        if isinstance(cond, Unary) and cond.op is UnOp.LNOT:
            self._gen_branch_true(cond.operand, label)
            return
        if isinstance(cond, Binary) and cond.op is BinOp.LAND:
            self._gen_branch_false(cond.left, label)
            self._gen_branch_false(cond.right, label)
            return
        if isinstance(cond, Binary) and cond.op is BinOp.LOR:
            through = self.new_label("or")
            self._gen_branch_true(cond.left, through)
            self._gen_branch_false(cond.right, label)
            e.place_label(through)
            return
        if isinstance(cond, Binary) and cond.op in COMPARISONS:
            self._gen_comparison_branch(cond, label, invert=True)
            return
        self._gen_truthiness(cond)
        e.emit(Op.JZ, LabelRef(label))

    def _gen_branch_true(self, cond: Expr, label: str) -> None:
        e = self._emitter
        if isinstance(cond, BoolLiteral):
            if cond.value:
                e.emit(Op.JMP, LabelRef(label))
            return
        if isinstance(cond, Unary) and cond.op is UnOp.LNOT:
            self._gen_branch_false(cond.operand, label)
            return
        if isinstance(cond, Binary) and cond.op is BinOp.LOR:
            self._gen_branch_true(cond.left, label)
            self._gen_branch_true(cond.right, label)
            return
        if isinstance(cond, Binary) and cond.op is BinOp.LAND:
            through = self.new_label("and")
            self._gen_branch_false(cond.left, through)
            self._gen_branch_true(cond.right, label)
            e.place_label(through)
            return
        if isinstance(cond, Binary) and cond.op in COMPARISONS:
            self._gen_comparison_branch(cond, label, invert=False)
            return
        self._gen_truthiness(cond)
        e.emit(Op.JNZ, LabelRef(label))

    def _gen_truthiness(self, expr: Expr) -> None:
        """Set the Z flag from an integer/bool expression's value."""
        e = self._emitter
        words = self._words_of(expr)
        if words == 1:
            self._gen_into_acc(expr)
            e.emit(Op.CMP, Imm(0), comment="truth test")
            return
        temp = self._alloc_temp(words)
        self._gen_into(expr, temp)
        e.emit(Op.LDA, temp.word(0))
        for index in range(1, words):
            e.emit(Op.ORR, temp.word(index))
        e.emit(Op.CMP, Imm(0), comment="truth test (multi-word)")
        self._free_temp(temp)

    def _gen_comparison_branch(self, cond: Binary, label: str,
                               invert: bool) -> None:
        """Branch on a comparison.  ``invert=True`` branches when false."""
        e = self._emitter
        op = cond.op
        left, right = cond.left, cond.right
        words = max(self._words_of(left), self._words_of(right))

        # fused comparator: single-word EQ/NE between simple operands
        if (self.arch.has_comparator and words == 1
                and op in (BinOp.EQ, BinOp.NE)
                and self._simple_operand(right) is not None):
            self._gen_into_acc(left)
            branch_false = op is BinOp.EQ
            fused = Op.CBNE if branch_false == invert else Op.CBEQ
            e.emit(fused, self._simple_operand(right), LabelRef(label),
                   comment="comparator ALU style")
            return

        if words == 1:
            self._single_word_compare_branch(op, left, right, label, invert)
        else:
            self._multi_word_compare_branch(op, left, right, label, invert,
                                            words)

    def _single_word_compare_branch(self, op: BinOp, left: Expr, right: Expr,
                                    label: str, invert: bool) -> None:
        e = self._emitter
        # normalize GT/LE by swapping operands (expressions are side-effect
        # free apart from calls, whose order we accept changing)
        if op in (BinOp.GT, BinOp.LE):
            op = BinOp.LT if op is BinOp.GT else BinOp.GE
            left, right = right, left
        right_operand = self._simple_operand(right)
        if right_operand is None:
            temp = self._alloc_temp(1)
            self._gen_into_acc(right)
            e.emit(Op.STA, temp.word(0))
            self._gen_into_acc(left)
            e.emit(Op.CMP, temp.word(0))
            self._free_temp(temp)
        else:
            self._gen_into_acc(left)
            e.emit(Op.CMP, right_operand)
        target = LabelRef(label)
        if op is BinOp.EQ:
            e.emit(Op.JNZ if invert else Op.JZ, target)
        elif op is BinOp.NE:
            e.emit(Op.JZ if invert else Op.JNZ, target)
        elif op is BinOp.LT:
            e.emit(Op.JP if invert else Op.JN, target)
        elif op is BinOp.GE:
            e.emit(Op.JN if invert else Op.JP, target)
        else:  # pragma: no cover
            raise CodegenError(f"unexpected comparison {op}")

    def _multi_word_compare_branch(self, op: BinOp, left: Expr, right: Expr,
                                   label: str, invert: bool,
                                   words: int) -> None:
        e = self._emitter
        left_loc = self._force_loc(left, words)
        right_loc = self._force_loc(right, words)
        target = LabelRef(label)
        if op in (BinOp.EQ, BinOp.NE):
            branch_on_mismatch = (op is BinOp.EQ) == invert
            if branch_on_mismatch:
                for index in range(words):
                    e.emit(Op.LDA, left_loc.word(index))
                    e.emit(Op.CMP, right_loc.word(index))
                    e.emit(Op.JNZ, target)
            else:
                through = self.new_label("cmp")
                for index in range(words):
                    e.emit(Op.LDA, left_loc.word(index))
                    e.emit(Op.CMP, right_loc.word(index))
                    e.emit(Op.JNZ, LabelRef(through))
                e.emit(Op.JMP, target)
                e.place_label(through)
            return
        if op in (BinOp.GT, BinOp.LE):
            op = BinOp.LT if op is BinOp.GT else BinOp.GE
            left_loc, right_loc = right_loc, left_loc
        # left - right, keep only the final (sign) word's N flag
        e.emit(Op.LDA, left_loc.word(0))
        e.emit(Op.SUB, right_loc.word(0))
        for index in range(1, words):
            e.emit(Op.LDA, left_loc.word(index))
            e.emit(Op.SBC, right_loc.word(index))
        if op is BinOp.LT:
            e.emit(Op.JP if invert else Op.JN, target)
        else:  # GE
            e.emit(Op.JN if invert else Op.JP, target)

    # -- general (multi-word capable) path --------------------------------------
    def _force_loc(self, expr: Expr, words: int) -> VarLoc:
        """Get a VarLoc holding *expr*'s value (evaluating if necessary)."""
        if isinstance(expr, NameRef):
            loc = self._lookup_var(expr.name)
            if loc is not None and loc.n_words >= words:
                return loc
        constant = self._try_const(expr)
        if constant is not None:
            temp = self._alloc_temp(words)
            self._store_constant(constant, temp, words)
            return temp
        temp = self._alloc_temp(words)
        self._gen_into(expr, temp)
        return temp

    def _store_constant(self, value: int, loc: VarLoc, words: int) -> None:
        e = self._emitter
        mask = (1 << self.arch.data_width) - 1
        for index in range(words):
            word = (value >> (index * self.arch.data_width)) & mask
            e.emit(Op.LDA, Imm(word))
            e.emit(Op.STA, loc.word(index), comment=f"const {value} w{index}")

    def _copy(self, source: VarLoc, dest: VarLoc, words: int) -> None:
        e = self._emitter
        for index in range(min(words, source.n_words)):
            e.emit(Op.LDA, source.word(index))
            e.emit(Op.STA, dest.word(index))
        if words <= source.n_words:
            return
        # widening: sign-extend signed sources, zero-extend unsigned ones
        if source.signed:
            e.emit(Op.LDA, source.word(source.n_words - 1))
            e.emit(Op.SHL, comment="sign bit -> carry")
            e.emit(Op.LDA, Imm(0))
            e.emit(Op.SBC, Imm(0), comment="0 or all-ones fill word")
        else:
            e.emit(Op.LDA, Imm(0), comment="zero-extend")
        for index in range(source.n_words, words):
            e.emit(Op.STA, dest.word(index))

    def _gen_into(self, expr: Expr, dest: VarLoc) -> None:
        """Evaluate *expr* into the (possibly multi-word) location *dest*."""
        e = self._emitter
        words = dest.n_words
        expr_words = self._words_of(expr)

        if expr_words == 1 and words == 1:
            self._gen_into_acc(expr)
            e.emit(Op.STA, dest.word(0))
            return

        constant = self._try_const(expr)
        if constant is not None:
            self._store_constant(constant, dest, words)
            return

        if isinstance(expr, NameRef):
            loc = self._lookup_var(expr.name)
            if loc is None:
                # conditions/ports are single-word; store then zero-extend
                self._gen_into_acc(expr)
                e.emit(Op.STA, dest.word(0))
                for index in range(1, words):
                    e.emit(Op.LDA, Imm(0))
                    e.emit(Op.STA, dest.word(index))
                return
            self._copy(loc, dest, words)
            return

        if isinstance(expr, (FieldAccess, Index)):
            place = self._resolve_place(expr)
            for index in range(words):
                self._load_place_word(place, index)
                e.emit(Op.STA, dest.word(index))
            return

        if isinstance(expr, Call):
            self._gen_call(expr, want_value=True, dest=dest)
            return

        if isinstance(expr, Unary):
            self._gen_unary_into(expr, dest)
            return

        if isinstance(expr, Binary):
            self._gen_binary_into(expr, dest)
            return

        # single-word value into a wider destination
        if expr_words == 1:
            self._gen_into_acc(expr)
            e.emit(Op.STA, dest.word(0))
            for index in range(1, words):
                e.emit(Op.LDA, Imm(0))
                e.emit(Op.STA, dest.word(index))
            return
        raise CodegenError(f"cannot evaluate {expr!r} into {dest.name}")

    def _gen_unary_into(self, expr: Unary, dest: VarLoc) -> None:
        e = self._emitter
        words = dest.n_words
        if words == 1:
            self._gen_into_acc(expr)
            e.emit(Op.STA, dest.word(0))
            return
        if expr.op is UnOp.LNOT:
            self._materialize_bool(expr)
            e.emit(Op.STA, dest.word(0))
            for index in range(1, words):
                e.emit(Op.LDA, Imm(0))
                e.emit(Op.STA, dest.word(index))
            return
        source = self._force_loc(expr.operand, words)
        if expr.op is UnOp.BNOT:
            for index in range(words):
                e.emit(Op.LDA, source.word(index))
                e.emit(Op.NOT)
                e.emit(Op.STA, dest.word(index))
            return
        # NEG: 0 - x with borrow chain
        e.emit(Op.LDA, Imm(0))
        e.emit(Op.SUB, source.word(0), comment="negate low word")
        e.emit(Op.STA, dest.word(0))
        for index in range(1, words):
            e.emit(Op.LDA, Imm(0))
            e.emit(Op.SBC, source.word(index))
            e.emit(Op.STA, dest.word(index))

    _MULTIWORD_CHAIN = {
        BinOp.ADD: (Op.ADD, Op.ADC),
        BinOp.SUB: (Op.SUB, Op.SBC),
        BinOp.AND: (Op.AND, Op.AND),
        BinOp.OR: (Op.ORR, Op.ORR),
        BinOp.XOR: (Op.XOR, Op.XOR),
    }

    def _gen_binary_into(self, expr: Binary, dest: VarLoc) -> None:
        e = self._emitter
        words = dest.n_words
        if words == 1:
            self._gen_into_acc(expr)
            e.emit(Op.STA, dest.word(0))
            return
        if expr.op in COMPARISONS or expr.op in (BinOp.LAND, BinOp.LOR):
            self._materialize_bool(expr)
            e.emit(Op.STA, dest.word(0))
            for index in range(1, words):
                e.emit(Op.LDA, Imm(0))
                e.emit(Op.STA, dest.word(index))
            return
        if expr.op in (BinOp.MUL, BinOp.DIV, BinOp.MOD):
            self._gen_muldiv(expr, single_word=False, dest=dest)
            return
        if expr.op in (BinOp.SHL, BinOp.SHR):
            self._gen_multiword_shift(expr, dest)
            return
        chain = self._MULTIWORD_CHAIN.get(expr.op)
        if chain is None:
            raise CodegenError(f"unsupported multi-word operator {expr.op}")
        first_op, rest_op = chain
        left = self._force_loc(expr.left, words)
        right = self._force_loc(expr.right, words)
        for index in range(words):
            e.emit(Op.LDA, left.word(index) if index < left.n_words else Imm(0))
            operand = (right.word(index) if index < right.n_words else Imm(0))
            e.emit(first_op if index == 0 else rest_op, operand,
                   comment=f"{expr.op.value} word {index}")
            e.emit(Op.STA, dest.word(index))

    def _gen_multiword_shift(self, expr: Binary, dest: VarLoc) -> None:
        e = self._emitter
        words = dest.n_words
        amount = self._try_const(expr.right)
        if amount is None:
            self._gen_runtime_shift(expr, dest=dest)
            return
        source = self._force_loc(expr.left, words)
        self._copy(source, dest, words)
        for _ in range(amount):
            if expr.op is BinOp.SHL:
                e.emit(Op.LDA, dest.word(0))
                e.emit(Op.SHL)
                e.emit(Op.STA, dest.word(0))
                for index in range(1, words):
                    e.emit(Op.LDA, dest.word(index))
                    e.emit(Op.RCL, comment="carry into next word")
                    e.emit(Op.STA, dest.word(index))
            else:
                e.emit(Op.LDA, dest.word(words - 1))
                e.emit(Op.SHR)
                e.emit(Op.STA, dest.word(words - 1))
                for index in range(words - 2, -1, -1):
                    e.emit(Op.LDA, dest.word(index))
                    e.emit(Op.RCR, comment="carry into next word")
                    e.emit(Op.STA, dest.word(index))

    # -- dynamic places ---------------------------------------------------------
    def _load_place_word(self, place, word_index: int) -> None:
        """Load one word of a place into ACC."""
        e = self._emitter
        if isinstance(place, VarLoc):
            e.emit(Op.LDA, place.word(word_index))
            return
        assert isinstance(place, _DynamicPlace)
        self._gen_place_index(place)
        base = place.base_word(word_index, self.arch)
        e.emit(Op.LDI, base, comment=f"{place.base.name}[dyn]+{word_index}")

    def _store_place_word(self, place, word_index: int) -> None:
        """Store ACC into one word of a place (ACC must hold the value)."""
        e = self._emitter
        if isinstance(place, VarLoc):
            e.emit(Op.STA, place.word(word_index))
            return
        assert isinstance(place, _DynamicPlace)
        temp = self._alloc_temp(1)
        e.emit(Op.STA, temp.word(0), comment="save value around index calc")
        self._gen_place_index(place)
        e.emit(Op.LDA, temp.word(0))
        base = place.base_word(word_index, self.arch)
        e.emit(Op.STI, base, comment=f"{place.base.name}[dyn]+{word_index}")
        self._free_temp(temp)

    def _gen_place_index(self, place: "_DynamicPlace") -> None:
        """Compute the dynamic word offset into OP.

        The OP register is one data-bus word wide, so only the low word of a
        wider index expression is used — address spaces are well under 2^8
        words, so a sane program never indexes beyond it.
        """
        e = self._emitter
        if self._words_of(place.index_expr) > 1:
            loc = self._force_loc(place.index_expr,
                                  self._words_of(place.index_expr))
            e.emit(Op.LDA, loc.word(0), comment="index low word")
        else:
            self._gen_into_acc(place.index_expr)
        if place.stride > 1:
            # index * stride via shift-adds (stride is small and static)
            stride = place.stride
            if stride & (stride - 1) == 0:
                shifts = stride.bit_length() - 1
                for _ in range(shifts):
                    e.emit(Op.SHL, comment="index * stride")
            else:
                temp = self._alloc_temp(1)
                e.emit(Op.STA, temp.word(0))
                for _ in range(stride - 1):
                    e.emit(Op.ADD, temp.word(0), comment="index * stride")
                self._free_temp(temp)
        e.emit(Op.TAO, comment="index -> OP")

    def _gen_into_place(self, expr: Expr, place) -> None:
        if isinstance(place, VarLoc):
            self._gen_into(expr, place)
            return
        words = place.value_words
        temp = self._alloc_temp(words)
        self._gen_into(expr, temp)
        for index in range(words):
            self._emitter.emit(Op.LDA, temp.word(index))
            self._store_place_word(place, index)
        self._free_temp(temp)

    # -- calls -------------------------------------------------------------------
    def _gen_call(self, call: Call, want_value: bool,
                  dest: Optional[VarLoc] = None) -> None:
        e = self._emitter
        if is_builtin(call.name):
            self._gen_builtin(call)
            return
        callee = self.program.function(call.name)
        # marshal arguments into the callee's static parameter slots
        for param, arg in zip(callee.params, call.args):
            slot = self.allocator.allocate(f"{callee.name}.{param.name}",
                                           param.typ, StorageClass.INTERNAL)
            self._gen_into(arg, slot)
        e.emit(Op.CALL, LabelRef(callee.name), comment=f"call {call.name}")
        e.push_node(CallCost(callee.name))
        if want_value and not isinstance(callee.return_type, VoidType):
            ret = self.allocator.allocate(f"{callee.name}.__ret",
                                          callee.return_type,
                                          StorageClass.INTERNAL)
            if dest is not None:
                self._copy(ret, dest, dest.n_words)
            else:
                e.emit(Op.LDA, ret.word(0), comment=f"{call.name} result")

    def _gen_builtin(self, call: Call) -> None:
        e = self._emitter
        name = call.name
        if name == "Raise":
            event = call.args[0].name
            e.emit(Op.EVSET, SignalRef(self.maps.events[event], event),
                   comment=f"raise {event}")
        elif name == "SetTrue":
            condition = call.args[0].name
            e.emit(Op.CSET, SignalRef(self.maps.conditions[condition], condition))
        elif name == "SetFalse":
            condition = call.args[0].name
            e.emit(Op.CCLR, SignalRef(self.maps.conditions[condition], condition))
        elif name == "Test":
            condition = call.args[0].name
            e.emit(Op.CTST, SignalRef(self.maps.conditions[condition], condition))
        elif name == "ReadPort":
            port = call.args[0].name
            e.emit(Op.INP, PortRef(self.maps.ports[port]), comment=port)
        elif name == "WritePort":
            port = call.args[0].name
            self._gen_into_acc(call.args[1])
            e.emit(Op.OUTP, PortRef(self.maps.ports[port]), comment=port)
        else:  # pragma: no cover
            raise CodegenError(f"unknown builtin {name}")


@dataclass
class _DynamicPlace:
    """An lvalue with one dynamic index: ``base[index * stride + offset]``."""

    base: VarLoc
    word_offset: int
    index_expr: Expr
    stride: int
    value_words: int

    def base_word(self, word_index: int, arch: ArchConfig) -> Mem:
        head = self.base.words[0]
        if not isinstance(head, Mem):
            raise CodegenError(
                f"array {self.base.name} must live in RAM, not registers")
        return Mem(head.address + self.word_offset + word_index, head.space)


# ---------------------------------------------------------------------------
# runtime helper generation
# ---------------------------------------------------------------------------

def _runtime_source(name: str, width: int) -> str:
    """Source of a shift-add runtime helper in the action dialect itself.

    Generated helpers use only natively supported operators, so they compile
    on any architecture — including the minimal TEP, where a 16-bit multiply
    becomes the long shift-add loop that blows the Table 4 critical paths.
    """
    t = f"int:{width}"
    if name.startswith("__mul"):
        return f"""
        {t} {name}({t} a, {t} b) {{
          {t} r = 0;
          @bound({width}) while (b != 0) {{
            if (b & 1) {{ r = r + a; }}
            a = a << 1;
            b = b >> 1;
          }}
          return r;
        }}
        """
    if name.startswith("__div") or name.startswith("__mod"):
        want = "q" if name.startswith("__div") else "r"
        return f"""
        {t} {name}({t} a, {t} b) {{
          {t} q = 0;
          {t} r = 0;
          {t} i = {width};
          @bound({width}) while (i != 0) {{
            r = r << 1;
            if (a < 0) {{ r = r | 1; }}
            a = a << 1;
            if (r >= b) {{ r = r - b; q = (q << 1) | 1; }}
            else {{ q = q << 1; }}
            i = i - 1;
          }}
          return {want};
        }}
        """
    if name.startswith("__shl") or name.startswith("__shr"):
        op = "<<" if name.startswith("__shl") else ">>"
        return f"""
        {t} {name}({t} a, {t} n) {{
          @bound({width}) while (n != 0) {{
            a = a {op} 1;
            n = n - 1;
          }}
          return a;
        }}
        """
    raise CodegenError(f"unknown runtime helper {name}")


def required_helpers(program, arch: ArchConfig) -> List[str]:
    """Which runtime helpers the program needs on *arch*."""
    from repro.action.ast import walk_expr, walk_stmts

    needed: List[str] = []

    def note(kind: str, width: int) -> None:
        rounded = 8 if width <= 8 else (16 if width <= 16 else 32)
        name = f"__{kind}{rounded}"
        if name not in needed:
            needed.append(name)

    for function in program.functions:
        if function.name.startswith("__"):
            continue
        for stmt in walk_stmts(function.body):
            for attr in ("value", "init", "cond", "expr"):
                root = getattr(stmt, attr, None)
                if root is None:
                    continue
                for node in walk_expr(root):
                    if not isinstance(node, Binary):
                        continue
                    width = type_width(node.typ) if node.typ else 16
                    if node.op in (BinOp.MUL, BinOp.DIV, BinOp.MOD):
                        if not (arch.has_muldiv and width <= arch.data_width):
                            kind = {BinOp.MUL: "mul", BinOp.DIV: "div",
                                    BinOp.MOD: "mod"}[node.op]
                            note(kind, width)
                    elif node.op in (BinOp.SHL, BinOp.SHR):
                        if not isinstance(node.right, IntLiteral):
                            kind = "shl" if node.op is BinOp.SHL else "shr"
                            note(kind, width)
    return needed


def prepare_program(source: str, arch: ArchConfig, externals=None,
                    with_preamble: bool = True) -> CheckedProgram:
    """Parse, splice in required runtime helpers, and check.

    This is the front half of the flow: feed it the application's
    intermediate-C source; hand the result to :class:`CodeGenerator`.
    """
    from repro.action.check import Externals, check_program
    from repro.action.parser import parse_program, parse_with_preamble

    parse = parse_with_preamble if with_preamble else parse_program
    program = parse(source)
    # type information is needed to find helper widths: check once without
    # helpers (helper calls are emitted by codegen, not present in source)
    checked = check_program(program, externals)
    helper_names = required_helpers(program, arch)
    # helpers may need other helpers (division uses shifts by 1 only, so the
    # closure is a single pass)
    if helper_names:
        helper_source = "\n".join(_runtime_source(name, int(name[5:]))
                                  for name in helper_names)
        full = (helper_source + "\n" + source)
        program = parse(full)
        checked = check_program(program, externals)
    return checked
