"""Peephole optimizations (section 4, first rung of the improvement ladder).

"First, a peephole optimization step removes redundant jumps from the
microprogram sequences."  Unoptimized microprograms end with an explicit
jump microinstruction returning control to the fetch sequence;
:func:`optimize_microprogram` folds that jump into the preceding
microinstruction's next-address field — one clock cycle saved on *every*
instruction executed.

A small assembler-level cleanup (:func:`optimize_assembly`) accompanies it:
jumps to the immediately following instruction and dead store/load pairs are
artifacts of template-based code generation and disappear for free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.isa.isa import (
    CONTROL_TRANSFERS,
    Instruction,
    JUMP_OPS,
    LabelRef,
    Mem,
    Op,
    Reg,
)
from repro.isa.microcode import RETURN_TO_FETCH, MicroOp


def optimize_microprogram(ops: List[MicroOp],
                          fetch_address: int = 0) -> List[MicroOp]:
    """Remove the redundant trailing return-to-fetch jump.

    The jump's only effect is to set the micro-PC to the fetch sequence;
    the same is achieved by pointing the previous microinstruction's
    next-address field there.  Returns a new list; the final
    microinstruction carries ``next_address=fetch_address`` explicitly.
    """
    if not ops:
        return []
    result = list(ops)
    while len(result) > 1 and _is_return_jump(result[-1]):
        result.pop()
    result[-1] = replace(result[-1], next_address=fetch_address)
    return result


def _is_return_jump(op: MicroOp) -> bool:
    return op.group is RETURN_TO_FETCH.group and op.signal == RETURN_TO_FETCH.signal


def count_redundant_jumps(programs: List[List[MicroOp]]) -> int:
    """How many microinstructions the peephole would remove."""
    return sum(1 for ops in programs if ops and _is_return_jump(ops[-1]))


# ---------------------------------------------------------------------------
# assembler-level cleanup
# ---------------------------------------------------------------------------

def optimize_assembly(instructions: List[Instruction]) -> List[Instruction]:
    """Apply simple assembler-level peepholes until a fixed point:

    * ``JMP L`` where ``L`` labels the next instruction → removed;
    * ``STA x`` immediately followed by ``LDA x`` → the load is removed
      (the accumulator already holds the value);
    * ``LDA x`` immediately following ``STA x`` inside a basic block only —
      a label between the two defeats the rewrite.
    """
    current = list(instructions)
    while True:
        rewritten = _remove_jump_to_next(current)
        rewritten = _remove_store_load(rewritten)
        if rewritten == current:
            return rewritten
        current = rewritten


def _remove_jump_to_next(instructions: List[Instruction]) -> List[Instruction]:
    result: List[Instruction] = []
    for index, instruction in enumerate(instructions):
        if (instruction.op is Op.JMP
                and isinstance(instruction.operand, LabelRef)
                and index + 1 < len(instructions)
                and instructions[index + 1].label == instruction.operand.name):
            # the jump lands on the very next instruction — drop it, but keep
            # its own label (if any) by migrating it forward
            if instruction.label is not None:
                successor = instructions[index + 1]
                # cannot merge two labels onto one instruction; keep the jump
                if successor.label is not None and successor.label != instruction.label:
                    result.append(instruction)
                    continue
                instructions[index + 1] = successor.with_label(instruction.label)
            continue
        result.append(instruction)
    return result


def _remove_store_load(instructions: List[Instruction]) -> List[Instruction]:
    result: List[Instruction] = []
    skip = False
    for index, instruction in enumerate(instructions):
        if skip:
            skip = False
            continue
        result.append(instruction)
        if index + 1 >= len(instructions):
            continue
        successor = instructions[index + 1]
        if (instruction.op is Op.STA and successor.op is Op.LDA
                and successor.label is None
                and _same_location(instruction.operand, successor.operand)):
            skip = True
    return result


def _same_location(a, b) -> bool:
    if isinstance(a, Mem) and isinstance(b, Mem):
        return a.address == b.address and a.space == b.space
    if isinstance(a, Reg) and isinstance(b, Reg):
        return a.index == b.index
    return False
