"""Structural WCET model for compiled routines.

"If possible, the transition lengths are derived from the assembler code of
their associated routines, otherwise explicit timing constraints must be
specified" (section 4).  The code generator emits structured code (no
computed jumps), so the worst-case execution time decomposes structurally:

* a straight-line block costs the sum of its instructions' microprogram
  lengths (:func:`repro.isa.microcode.cycle_cost`);
* a branch costs its test plus the maximum of its arms;
* a bounded loop costs ``(bound + 1)`` condition evaluations plus ``bound``
  body executions;
* a call costs the callee's WCET (no recursion, so routines resolve
  callees-first).

The same tree evaluated under different :class:`~repro.isa.arch.ArchConfig`
values yields the per-architecture timings of Table 4 without recompiling —
unless the architecture change alters code shape (wider bus, new
instructions), in which case the flow recompiles first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.arch import ArchConfig
from repro.isa.isa import Instruction
from repro.isa.microcode import cycle_cost


class CostNode:
    """Base class of WCET tree nodes."""

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        raise NotImplementedError


@dataclass
class Block(CostNode):
    """A straight-line run of instructions (shared with the code list)."""

    instructions: List[Instruction] = field(default_factory=list)

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        return sum(cycle_cost(i, arch) for i in self.instructions)


@dataclass
class Seq(CostNode):
    parts: List[CostNode] = field(default_factory=list)

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        return sum(part.wcet(arch, routines) for part in self.parts)


@dataclass
class Branch(CostNode):
    """A two-way branch; ``test`` is shared, the worst arm counts."""

    test: CostNode
    then_arm: CostNode
    else_arm: CostNode

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        return self.test.wcet(arch, routines) + max(
            self.then_arm.wcet(arch, routines),
            self.else_arm.wcet(arch, routines))


@dataclass
class Loop(CostNode):
    """A bounded loop: condition evaluated ``bound + 1`` times."""

    test: CostNode
    body: CostNode
    bound: int

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        test = self.test.wcet(arch, routines)
        body = self.body.wcet(arch, routines)
        return (self.bound + 1) * test + self.bound * body


@dataclass
class CallCost(CostNode):
    """The cost of a call's body (the CALL/RET instructions live in Blocks)."""

    callee: str

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        if self.callee not in routines:
            raise KeyError(
                f"WCET of callee {self.callee!r} not available yet — "
                "evaluate routines callees-first")
        return routines[self.callee]


@dataclass
class FixedCost(CostNode):
    """An explicit cycle count (``@wcet`` overrides, scheduler overheads)."""

    cycles: int

    def wcet(self, arch: ArchConfig, routines: Dict[str, int]) -> int:
        return self.cycles


def iter_blocks(node: CostNode):
    """Yield every :class:`Block` in the tree, preorder."""
    if isinstance(node, Block):
        yield node
    elif isinstance(node, Seq):
        for part in node.parts:
            yield from iter_blocks(part)
    elif isinstance(node, Branch):
        yield from iter_blocks(node.test)
        yield from iter_blocks(node.then_arm)
        yield from iter_blocks(node.else_arm)
    elif isinstance(node, Loop):
        yield from iter_blocks(node.test)
        yield from iter_blocks(node.body)
    # CallCost / FixedCost carry no instructions


def verify_cost_tree(instructions: List[Instruction],
                     tree: CostNode) -> List[str]:
    """Consistency check between emitted code and its WCET tree.

    Every emitted instruction must appear in exactly one block (otherwise
    the WCET either misses or double-counts work).  Returns a list of
    problems; empty means consistent.  The code generator is expected to
    maintain this invariant — the property tests enforce it over random
    programs.
    """
    problems: List[str] = []
    seen: Dict[int, int] = {}
    for block in iter_blocks(tree):
        for instruction in block.instructions:
            key = id(instruction)
            seen[key] = seen.get(key, 0) + 1
    for index, instruction in enumerate(instructions):
        count = seen.get(id(instruction), 0)
        if count == 0:
            problems.append(f"instruction {index} ({instruction}) missing "
                            "from the cost tree")
        elif count > 1:
            problems.append(f"instruction {index} ({instruction}) counted "
                            f"{count} times")
    total_in_tree = sum(count for count in seen.values())
    if total_in_tree > len(instructions):
        problems.append(
            f"cost tree holds {total_in_tree} instruction slots for "
            f"{len(instructions)} emitted instructions")
    return problems


def routine_wcets(
    trees: Dict[str, CostNode],
    order: List[str],
    arch: ArchConfig,
    overrides: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Evaluate every routine's WCET, callees before callers.

    ``order`` is the topological call order from the checker; ``overrides``
    carries ``@wcet`` annotations that replace the derived value.
    """
    overrides = overrides or {}
    results: Dict[str, int] = {}
    for name in order:
        if name in overrides and overrides[name] is not None:
            results[name] = overrides[name]
        else:
            results[name] = trees[name].wcet(arch, results)
    return results
