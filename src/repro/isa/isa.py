"""The TEP instruction set (section 3.2).

The basic TEP is an accumulator machine: a calculation unit with two
registers (the accumulator ``ACC`` and a second operand register ``OP``), an
ALU, on-chip RAM, a Harvard architecture, an 8-bit data bus and a 16-bit
instruction format.  "The instruction set includes load and store
instructions, basic arithmetic and logic instructions, shift instructions,
jump instructions, and port instructions.  Further operations reset the
transition registers, perform calls to the transition routines, and
communicate with the SLA."

Operands come in five addressing modes:

* ``Imm`` — immediate constant;
* ``Reg`` — a register-file register (library option);
* ``Mem(addr, INTERNAL)`` — on-chip RAM;
* ``Mem(addr, EXTERNAL)`` — external RAM (adds wait states);
* ``PortRef`` / ``SignalRef`` / ``LabelRef`` — port addresses, CR
  event/condition indices, and code labels.

Extension instructions (``MUL``/``DIV``, ``CBEQ``/``CBNE``, ``NEG``,
``SHLN``/``SHRN``, ``CUSTOM``) are only *legal* on architectures whose
component library provides the corresponding hardware
(:class:`repro.isa.arch.ArchConfig`); :func:`check_legal` enforces this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.isa.arch import ArchConfig, StorageClass


class IsaError(Exception):
    """Raised for malformed or architecturally illegal instructions."""


# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Imm:
    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Reg:
    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise IsaError("register index must be non-negative")

    def __str__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True)
class Mem:
    address: int
    space: StorageClass = StorageClass.INTERNAL

    def __post_init__(self) -> None:
        if self.space is StorageClass.REGISTER:
            raise IsaError("use Reg(...) for register operands")

    def __str__(self) -> str:
        prefix = "int" if self.space is StorageClass.INTERNAL else "ext"
        return f"{prefix}[{self.address}]"


@dataclass(frozen=True)
class PortRef:
    address: int

    def __str__(self) -> str:
        return f"port[{self.address}]"


@dataclass(frozen=True)
class SignalRef:
    """An event or condition index in the CR / condition cache."""

    index: int
    name: str = ""

    def __str__(self) -> str:
        return self.name or f"sig[{self.index}]"


@dataclass(frozen=True)
class LabelRef:
    name: str
    #: filled by the assembler
    address: Optional[int] = None

    def __str__(self) -> str:
        return self.name


Operand = Union[Imm, Reg, Mem, PortRef, SignalRef, LabelRef, None]


# ---------------------------------------------------------------------------
# opcodes
# ---------------------------------------------------------------------------

class Op(enum.Enum):
    """Every TEP opcode.  The value is the 6-bit encoding."""

    NOP = 0x00
    # loads / stores
    LDA = 0x01        # ACC <- src
    LDO = 0x02        # OP  <- src
    STA = 0x03        # dst <- ACC
    TAO = 0x04        # OP  <- ACC
    LDI = 0x05        # ACC <- mem[base + OP]   (indexed, for arrays)
    STI = 0x06        # mem[base + OP] <- ACC
    # ALU (ACC <- ACC op {OP | src})
    ADD = 0x08
    ADC = 0x09
    SUB = 0x0A
    SBC = 0x0B
    AND = 0x0C
    ORR = 0x0D
    XOR = 0x0E
    CMP = 0x0F        # flags <- ACC - src
    NOT = 0x10
    NEG = 0x11        # two's complement (negator ALU style only)
    INC = 0x12
    DEC = 0x13
    # shifts
    SHL = 0x14        # 1 bit, through carry
    SHR = 0x15
    SHLN = 0x16       # n bits in one operation (barrel shifter only)
    SHRN = 0x17
    RCL = 0x1C        # rotate left through carry (multi-word shifts)
    RCR = 0x1D
    # multiply / divide (M/D calculation unit only)
    MUL = 0x18
    DIV = 0x19
    MOD = 0x1A
    # control
    JMP = 0x20
    JZ = 0x21
    JNZ = 0x22
    JC = 0x23
    JNC = 0x24
    JN = 0x25
    JP = 0x2B         # jump if not negative (N clear)
    CALL = 0x26
    RET = 0x27
    TRET = 0x28       # end of transition routine; signals the scheduler
    CBEQ = 0x29       # fused compare-and-branch-if-equal (comparator style)
    CBNE = 0x2A
    # ports
    INP = 0x30        # ACC <- data port
    OUTP = 0x31       # data port <- ACC
    # SLA / CR communication
    EVSET = 0x38      # set event bit in the CR
    CSET = 0x39       # set condition bit (through the condition cache)
    CCLR = 0x3A       # clear condition bit
    CTST = 0x3B       # ACC <- condition bit
    # application-specific fused operations
    CUSTOM = 0x3F


ALU_OPS = {Op.ADD, Op.ADC, Op.SUB, Op.SBC, Op.AND, Op.ORR, Op.XOR, Op.CMP}
UNARY_OPS = {Op.NOT, Op.NEG, Op.INC, Op.DEC}
SHIFT_OPS = {Op.SHL, Op.SHR, Op.SHLN, Op.SHRN, Op.RCL, Op.RCR}
MULDIV_OPS = {Op.MUL, Op.DIV, Op.MOD}
JUMP_OPS = {Op.JMP, Op.JZ, Op.JNZ, Op.JC, Op.JNC, Op.JN, Op.JP}
BRANCH_FUSED_OPS = {Op.CBEQ, Op.CBNE}
SIGNAL_OPS = {Op.EVSET, Op.CSET, Op.CCLR, Op.CTST}
PORT_OPS = {Op.INP, Op.OUTP}

#: opcodes that terminate or divert straight-line control flow
CONTROL_TRANSFERS = JUMP_OPS | BRANCH_FUSED_OPS | {Op.CALL, Op.RET, Op.TRET}


@dataclass(frozen=True)
class Instruction:
    """One assembler-level instruction, optionally labelled."""

    op: Op
    operand: Operand = None
    #: second operand for fused compare-branch: the branch target
    target: Optional[LabelRef] = None
    label: Optional[str] = None
    comment: str = ""

    def __str__(self) -> str:
        text = self.op.name
        if self.operand is not None:
            text += f" {self.operand}"
        if self.target is not None:
            text += f", {self.target}"
        if self.label:
            text = f"{self.label}: {text}"
        if self.comment:
            text += f"    ; {self.comment}"
        return text

    def with_label(self, label: str) -> "Instruction":
        return Instruction(self.op, self.operand, self.target, label,
                           self.comment)


def check_legal(instruction: Instruction, arch: ArchConfig) -> None:
    """Raise :class:`IsaError` if *instruction* needs hardware *arch* lacks."""
    op = instruction.op
    if op in MULDIV_OPS and not arch.has_muldiv:
        raise IsaError(f"{op.name} requires an M/D calculation unit")
    if op is Op.NEG and not arch.has_negator:
        raise IsaError("NEG requires the two's-complement ALU style")
    if op in (Op.SHLN, Op.SHRN) and not arch.has_barrel_shifter:
        raise IsaError(f"{op.name} requires a barrel shifter")
    if op in BRANCH_FUSED_OPS and not arch.has_comparator:
        raise IsaError(f"{op.name} requires the comparator ALU style")
    if op is Op.CUSTOM:
        index = instruction.operand.value if isinstance(instruction.operand, Imm) else -1
        if not 0 <= index < len(arch.custom_instructions):
            raise IsaError(f"CUSTOM #{index} is not defined on {arch.name}")
    if isinstance(instruction.operand, Reg):
        if instruction.operand.index >= arch.register_file_size:
            raise IsaError(
                f"register R{instruction.operand.index} exceeds the register "
                f"file size {arch.register_file_size}")
    if isinstance(instruction.operand, Mem):
        if (instruction.operand.space is StorageClass.INTERNAL
                and instruction.operand.address >= arch.internal_ram_words):
            raise IsaError(
                f"internal address {instruction.operand.address} exceeds "
                f"{arch.internal_ram_words} words")


def check_program_legal(instructions: List[Instruction], arch: ArchConfig) -> None:
    for instruction in instructions:
        check_legal(instruction, arch)


# ---------------------------------------------------------------------------
# binary encoding (16-bit instruction format, section 3.2)
# ---------------------------------------------------------------------------

class Mode(enum.Enum):
    """2-bit addressing-mode field."""

    NONE = 0
    IMM = 1
    DIRECT = 2      # internal RAM / register / port / signal / label
    EXTERNAL = 3


def encode(instruction: Instruction) -> List[int]:
    """Encode to one or two 16-bit words.

    Layout of the first word: ``[15:10] opcode, [9:8] mode, [7:0] operand``.
    Operands that do not fit in 8 bits occupy a second word (the assembler-
    level format is fixed at 16 bits; wide constants use an extension word,
    which the microprogram fetches with a second program-memory access).
    """
    op_bits = instruction.op.value << 10
    operand = instruction.operand
    if instruction.op in BRANCH_FUSED_OPS:
        if instruction.target is None or instruction.target.address is None:
            raise IsaError(f"{instruction.op.name} needs a resolved target")
        # fused compare-branch: operand word + target word
        head, *rest = _encode_operand(op_bits, operand)
        return [head] + rest + [instruction.target.address & 0xFFFF]
    return _encode_operand(op_bits, operand)


def _encode_operand(op_bits: int, operand: Operand) -> List[int]:
    if operand is None:
        return [op_bits | (Mode.NONE.value << 8)]
    if isinstance(operand, Imm):
        value = operand.value & 0xFFFF
        if value <= 0xFF:
            return [op_bits | (Mode.IMM.value << 8) | value]
        return [op_bits | (Mode.IMM.value << 8) | 0xFF, value]
    if isinstance(operand, Reg):
        return [op_bits | (Mode.DIRECT.value << 8) | (0xC0 | operand.index)]
    if isinstance(operand, Mem):
        mode = (Mode.EXTERNAL if operand.space is StorageClass.EXTERNAL
                else Mode.DIRECT)
        # internal addresses above 0xBF collide with the register encoding
        # space (0xC0..); externals use the full byte
        limit = 0xFF if mode is Mode.EXTERNAL else 0xBF
        if operand.address <= limit:
            return [op_bits | (mode.value << 8) | (operand.address & 0xFF)]
        return [op_bits | (mode.value << 8) | 0xFF, operand.address & 0xFFFF]
    if isinstance(operand, PortRef):
        if operand.address <= 0xFF:
            return [op_bits | (Mode.DIRECT.value << 8) | operand.address]
        return [op_bits | (Mode.DIRECT.value << 8) | 0xFF, operand.address]
    if isinstance(operand, SignalRef):
        return [op_bits | (Mode.DIRECT.value << 8) | (operand.index & 0xFF)]
    if isinstance(operand, LabelRef):
        if operand.address is None:
            raise IsaError(f"unresolved label {operand.name!r}")
        if operand.address <= 0xFF:
            return [op_bits | (Mode.DIRECT.value << 8) | operand.address]
        return [op_bits | (Mode.DIRECT.value << 8) | 0xFF,
                operand.address & 0xFFFF]
    raise IsaError(f"cannot encode operand {operand!r}")


def encoded_length(instruction: Instruction) -> int:
    """Number of 16-bit program-memory words the instruction occupies."""
    operand = instruction.operand
    words = 1
    if isinstance(operand, Imm) and not 0 <= operand.value <= 0xFF:
        words += 1
    elif isinstance(operand, Mem):
        limit = 0xFF if operand.space is StorageClass.EXTERNAL else 0xBF
        if operand.address > limit:
            words += 1
    elif isinstance(operand, (PortRef, LabelRef)):
        address = (operand.address if isinstance(operand, PortRef)
                   else operand.address or 0)
        if address > 0xFF:
            words += 1
    if instruction.op in BRANCH_FUSED_OPS:
        words += 1
    return words


def program_size_words(instructions: List[Instruction]) -> int:
    """Total program-memory footprint in 16-bit words."""
    return sum(encoded_length(i) for i in instructions)
