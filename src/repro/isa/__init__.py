"""The TEP instruction set: architecture configs, ISA, microcode, assembler,
code generation, WCET analysis and the code-level optimizations.

Public API::

    from repro.isa import (
        ArchConfig, MINIMAL_TEP, MD16_TEP, CodeGenerator, prepare_program,
        cycle_cost, microprogram, assemble,
    )
"""

from repro.isa.arch import (
    ArchConfig,
    CustomInstruction,
    MAX_CUSTOM_DEPTH,
    MD16_TEP,
    MINIMAL_TEP,
    StorageClass,
    storage_access_cycles,
)
from repro.isa.assembler import (
    AsmError,
    AssembledProgram,
    assemble,
    emit_text,
    parse_text,
    resolve_labels,
)
from repro.isa.codegen import (
    Allocator,
    CodegenError,
    CodeGenerator,
    CodeObject,
    CompiledProgram,
    NameMaps,
    VarLoc,
    prepare_program,
    required_helpers,
)
from repro.isa.cost import (
    Block,
    Branch,
    CallCost,
    CostNode,
    FixedCost,
    Loop,
    Seq,
    routine_wcets,
)
from repro.isa.isa import (
    ALU_OPS,
    BRANCH_FUSED_OPS,
    CONTROL_TRANSFERS,
    Imm,
    Instruction,
    IsaError,
    JUMP_OPS,
    LabelRef,
    Mem,
    MULDIV_OPS,
    Op,
    PortRef,
    Reg,
    SHIFT_OPS,
    SIGNAL_OPS,
    SignalRef,
    check_legal,
    check_program_legal,
    encode,
    encoded_length,
    program_size_words,
)
from repro.isa.microcode import (
    DecoderRom,
    Group,
    MicroOp,
    TABLE1_FORMAT,
    cycle_cost,
    format_table1,
    microprogram,
)
from repro.isa.patterns import (
    CustomCandidate,
    PatternSite,
    evaluate_signature,
    expression_depth,
    expression_signature,
    find_comparator_sites,
    find_custom_candidates,
    find_negation_sites,
    is_fusable,
    leaf_variables,
)
from repro.isa.peephole import (
    count_redundant_jumps,
    optimize_assembly,
    optimize_microprogram,
)

__all__ = [
    "ALU_OPS", "Allocator", "ArchConfig", "AsmError", "AssembledProgram",
    "BRANCH_FUSED_OPS", "Block", "Branch", "CONTROL_TRANSFERS", "CallCost",
    "CodeGenerator", "CodeObject", "CodegenError", "CompiledProgram",
    "CostNode", "CustomCandidate", "CustomInstruction", "DecoderRom",
    "FixedCost", "Group", "Imm", "Instruction", "IsaError", "JUMP_OPS",
    "LabelRef", "Loop", "MAX_CUSTOM_DEPTH", "MD16_TEP", "MINIMAL_TEP",
    "MULDIV_OPS", "Mem", "MicroOp", "NameMaps", "Op", "PatternSite",
    "PortRef", "Reg", "SHIFT_OPS", "SIGNAL_OPS", "Seq", "SignalRef",
    "StorageClass", "TABLE1_FORMAT", "VarLoc", "assemble", "check_legal",
    "check_program_legal", "count_redundant_jumps", "cycle_cost",
    "emit_text", "encode", "encoded_length", "evaluate_signature",
    "expression_depth", "expression_signature", "find_comparator_sites",
    "find_custom_candidates", "find_negation_sites", "format_table1",
    "is_fusable", "leaf_variables", "microprogram", "optimize_assembly",
    "optimize_microprogram", "parse_text", "prepare_program",
    "program_size_words", "required_helpers", "resolve_labels",
    "routine_wcets", "storage_access_cycles",
]
