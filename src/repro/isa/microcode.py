"""Microprogrammed control of the TEP (section 3.2, Table 1).

"Each instruction of the TEP is represented by a microprogram containing a
sequence of microinstructions.  Every microinstruction defines a set of
datapath control signals that are asserted in a single state. […] In the
basic TEP, microinstructions are 16 bits wide.  The first eight bits
represent the control signals, and the other eight bit indicate the address
of the next microinstruction.  The eight control bits are further divided
into 3 bits to denote the group of control signals, and 5 bits to encode the
control signals."

Table 1's five groups are reproduced exactly:

=================  ====  ==========
group              bits  signal pattern
=================  ====  ==========
arithmetic         001   01x00
logical            001   000xx
shift              010   0xxxx
single signals     011   xxxxx
address bus        100   0xxxx
jump, branch       101   0xxxx
=================  ====  ==========

A microinstruction costs one clock; an instruction's execution time is the
length of its microprogram.  This is the quantity the WCET analysis sums and
the optimization ladder shrinks.

The microprogram of every instruction starts with the two fetch
microinstructions (drive PC onto the program-memory address bus; latch the
instruction register and increment PC) and — **unoptimized** — ends with an
explicit jump back to the fetch microprogram.  The peephole step of section
4 ("a peephole optimization step removes redundant jumps from the
microprogram sequences") folds that jump into the preceding
microinstruction's next-address field; :func:`repro.isa.peephole.
optimize_microprogram` performs exactly that rewrite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.isa import (
    ALU_OPS,
    BRANCH_FUSED_OPS,
    Imm,
    Instruction,
    IsaError,
    JUMP_OPS,
    LabelRef,
    Mem,
    MULDIV_OPS,
    Op,
    PortRef,
    Reg,
    SignalRef,
)


class Group(enum.Enum):
    """The 3-bit control-signal group of Table 1."""

    ALU = 0b001           # arithmetic and logical (distinguished by pattern)
    SHIFT = 0b010
    SINGLE = 0b011        # instructions influencing exactly one control signal
    ADDRESS = 0b100       # address bus instructions
    JUMP = 0b101          # jump, branch


#: Table 1 signal patterns, keyed by symbolic class
TABLE1_FORMAT: List[Tuple[str, Group, str]] = [
    ("arithmetic", Group.ALU, "01x00"),
    ("logical", Group.ALU, "000xx"),
    ("shift", Group.SHIFT, "0xxxx"),
    ("single signals", Group.SINGLE, "xxxxx"),
    ("address bus", Group.ADDRESS, "0xxxx"),
    ("jump, branch", Group.JUMP, "0xxxx"),
]


@dataclass(frozen=True)
class MicroOp:
    """One microinstruction: 3-bit group + 5-bit signal + 8-bit next address.

    ``next_address`` of ``None`` means "fall through to the next
    microinstruction"; the micro-assembler fills the field when the decoder
    ROM is laid out.
    """

    group: Group
    signal: int
    mnemonic: str
    next_address: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.signal < 32:
            raise IsaError(f"signal {self.signal} does not fit in 5 bits")

    def encode(self, next_address: int) -> int:
        """The 16-bit microinstruction word."""
        if not 0 <= next_address < 256:
            raise IsaError(f"next address {next_address} does not fit in 8 bits")
        return (self.group.value << 13) | (self.signal << 8) | next_address

    def __str__(self) -> str:
        return f"{self.group.name.lower():8s} {self.signal:05b}  {self.mnemonic}"


# -- signal dictionaries per group (5-bit encodings) -------------------------
# ALU group: arithmetic ops carry pattern 01x00-style codes (bit 3 set),
# logical ops pattern 000xx (bit 3/4 clear) — mirroring Table 1.
ARITH_SIGNALS = {
    "add": 0b01000, "adc": 0b01100, "sub": 0b01001, "sbc": 0b01101,
    "inc": 0b01010, "dec": 0b01011, "neg": 0b01110,
    "mul": 0b11000, "div": 0b11001, "mod": 0b11010, "custom": 0b11111,
}
LOGIC_SIGNALS = {
    "and": 0b00000, "or": 0b00001, "xor": 0b00010, "not": 0b00011,
    "cmp": 0b00100, "cbeq": 0b00101, "cbne": 0b00110,
}
SHIFT_SIGNALS = {"shl": 0b00000, "shr": 0b00001, "shln": 0b00010,
                 "shrn": 0b00011, "rcl": 0b00100, "rcr": 0b00101}
SINGLE_SIGNALS = {
    "imm_to_acc": 0b00000, "imm_to_op": 0b00001, "reg_to_acc": 0b00010,
    "reg_to_op": 0b00011, "acc_to_reg": 0b00100, "acc_to_op": 0b00101,
    "alu_to_acc": 0b00110, "port_strobe": 0b00111, "port_latch": 0b01000,
    "ev_set": 0b01001, "cond_set": 0b01010, "cond_clr": 0b01011,
    "cond_to_acc": 0b01100, "tret": 0b01101, "wait": 0b01110,
    "push_pc": 0b01111, "pop_pc": 0b10000, "nop": 0b11111,
}
ADDRESS_SIGNALS = {
    "pc_to_abus": 0b00000, "fetch_ir": 0b00001, "addr_to_abus": 0b00010,
    "ram_read": 0b00011, "ram_write": 0b00100, "ext_read": 0b00101,
    "ext_write": 0b00110, "imm_fetch": 0b00111, "port_addr": 0b01000,
}
JUMP_SIGNALS = {
    "jump": 0b00000, "branch_z": 0b00001, "branch_nz": 0b00010,
    "branch_c": 0b00011, "branch_nc": 0b00100, "branch_n": 0b00101,
    "to_fetch": 0b01111,
}


def _alu(mnemonic: str) -> MicroOp:
    signals = {**ARITH_SIGNALS, **LOGIC_SIGNALS}
    return MicroOp(Group.ALU, signals[mnemonic], mnemonic)


def _shift(mnemonic: str) -> MicroOp:
    return MicroOp(Group.SHIFT, SHIFT_SIGNALS[mnemonic], mnemonic)


def _single(mnemonic: str) -> MicroOp:
    return MicroOp(Group.SINGLE, SINGLE_SIGNALS[mnemonic], mnemonic)


def _address(mnemonic: str) -> MicroOp:
    return MicroOp(Group.ADDRESS, ADDRESS_SIGNALS[mnemonic], mnemonic)


def _jump(mnemonic: str) -> MicroOp:
    return MicroOp(Group.JUMP, JUMP_SIGNALS[mnemonic], mnemonic)


#: the two-microinstruction instruction fetch every microprogram starts with
FETCH_PROLOGUE = (_address("pc_to_abus"), _address("fetch_ir"))

#: the redundant trailing jump of unoptimized microcode
RETURN_TO_FETCH = _jump("to_fetch")


def _operand_fetch(operand, arch: ArchConfig, to_op: bool) -> List[MicroOp]:
    """Microinstructions that bring *operand* to OP (or ACC)."""
    destination = "imm_to_op" if to_op else "imm_to_acc"
    reg_destination = "reg_to_op" if to_op else "reg_to_acc"
    if operand is None:
        return []
    if isinstance(operand, Imm):
        return [_single(destination)]
    if isinstance(operand, Reg):
        return [_single(reg_destination)]
    if isinstance(operand, Mem):
        ops = [_address("addr_to_abus")]
        if operand.space is StorageClass.EXTERNAL:
            ops.append(_address("ext_read"))
            ops.extend(_single("wait") for _ in range(arch.external_ram_wait_states))
        else:
            ops.append(_address("ram_read"))
        return ops
    if isinstance(operand, (PortRef, SignalRef, LabelRef)):
        return [_single(destination)]
    raise IsaError(f"cannot fetch operand {operand!r}")


def _store(operand, arch: ArchConfig) -> List[MicroOp]:
    if isinstance(operand, Reg):
        return [_single("acc_to_reg")]
    if isinstance(operand, Mem):
        ops = [_address("addr_to_abus")]
        if operand.space is StorageClass.EXTERNAL:
            ops.append(_address("ext_write"))
            ops.extend(_single("wait") for _ in range(arch.external_ram_wait_states))
        else:
            ops.append(_address("ram_write"))
        return ops
    raise IsaError(f"cannot store to operand {operand!r}")


def microprogram(instruction: Instruction, arch: ArchConfig) -> List[MicroOp]:
    """The microinstruction sequence implementing *instruction* on *arch*.

    Includes the fetch prologue; includes the redundant return-to-fetch jump
    unless ``arch.microcode_optimized`` (the peephole's effect).
    """
    body = _body(instruction, arch)
    ops = list(FETCH_PROLOGUE) + body
    if not arch.microcode_optimized:
        ops.append(RETURN_TO_FETCH)
    return ops


def _body(instruction: Instruction, arch: ArchConfig) -> List[MicroOp]:
    op = instruction.op
    operand = instruction.operand

    if op is Op.NOP:
        return [_single("nop")]
    if op is Op.LDA:
        return _operand_fetch(operand, arch, to_op=False)
    if op is Op.LDO:
        return _operand_fetch(operand, arch, to_op=True)
    if op in (Op.LDI, Op.STI):
        # indexed access: one extra state to add OP to the base address
        if not isinstance(operand, Mem):
            raise IsaError(f"{op.name} needs a memory base operand")
        access = (_operand_fetch(operand, arch, to_op=False)
                  if op is Op.LDI else _store(operand, arch))
        return [_address("addr_to_abus")] + access
    if op is Op.TAO:
        return [_single("acc_to_op")]
    if op is Op.STA:
        return _store(operand, arch)
    if op in ALU_OPS:
        fetch = _operand_fetch(operand, arch, to_op=True)
        return fetch + [_alu(op.name.lower().replace("orr", "or"))]
    if op in (Op.NOT, Op.INC, Op.DEC, Op.NEG):
        return [_alu(op.name.lower())]
    if op in (Op.SHL, Op.SHR, Op.RCL, Op.RCR):
        return [_shift(op.name.lower())]
    if op in (Op.SHLN, Op.SHRN):
        return [_shift(op.name.lower())]
    if op in MULDIV_OPS:
        fetch = _operand_fetch(operand, arch, to_op=True)
        iterations = {"MUL": 4, "DIV": 6, "MOD": 6}[op.name]
        return fetch + [_alu(op.name.lower())] * iterations
    if op is Op.JMP:
        return [_jump("jump")]
    if op in JUMP_OPS:
        flag = {"JZ": "branch_z", "JNZ": "branch_nz", "JC": "branch_c",
                "JNC": "branch_nc", "JN": "branch_n", "JP": "branch_n"}[op.name]
        # one state to evaluate the flag, one to redirect the PC
        return [_jump(flag), _jump("jump")]
    if op in BRANCH_FUSED_OPS:
        # the comparator ALU style compares and redirects in one pass:
        # operand fetch + single compare-branch state
        fetch = _operand_fetch(operand, arch, to_op=True)
        return fetch + [_alu(op.name.lower())]
    if op is Op.CALL:
        return [_single("push_pc"), _single("push_pc"), _jump("jump")]
    if op is Op.RET:
        return [_single("pop_pc"), _single("pop_pc")]
    if op is Op.TRET:
        return [_single("tret"), _single("tret")]
    if op is Op.INP:
        return [_address("port_addr"), _single("port_latch")]
    if op is Op.OUTP:
        return [_address("port_addr"), _single("port_strobe")]
    if op is Op.EVSET:
        return [_single("ev_set")]
    if op is Op.CSET:
        return [_single("cond_set")]
    if op is Op.CCLR:
        return [_single("cond_clr")]
    if op is Op.CTST:
        return [_single("cond_to_acc")]
    if op is Op.CUSTOM:
        # "These instructions execute within one clock cycle."
        return [_alu("custom")]
    raise IsaError(f"no microprogram for {op}")


#: cycles lost re-filling the pipeline after a control transfer
PIPELINE_FLUSH_CYCLES = 2


def cycle_cost(instruction: Instruction, arch: ArchConfig) -> int:
    """Execution time of *instruction* in clock cycles on *arch*.

    On a pipelined TEP (section 6's future work, opt-in) the two fetch
    states overlap the previous instruction's execution, so they are hidden;
    control transfers flush the pipeline and pay them back (plus the flush
    penalty), so branch-heavy code gains less — the classic pipelining
    trade-off, priced at the microprogram level.
    """
    length = len(microprogram(instruction, arch))
    if not arch.pipelined:
        return length
    from repro.isa.isa import CONTROL_TRANSFERS

    hidden = len(FETCH_PROLOGUE)
    cost = max(1, length - hidden)
    if instruction.op in CONTROL_TRANSFERS:
        cost += PIPELINE_FLUSH_CYCLES
    return cost


def format_table1() -> List[Tuple[str, str, str]]:
    """Regenerate Table 1: (symbolic, group bits, signal pattern)."""
    return [(symbolic, format(group.value, "03b"), pattern)
            for symbolic, group, pattern in TABLE1_FORMAT]


class DecoderRom:
    """The application-specific microprogram decoder.

    "Once a particular PSCP version has been fixed, the associated
    microprogram decoder can be synthesized from the combination of all the
    microinstruction sequences involved."  Distinct microprograms are laid
    out consecutively; shared microprograms are stored once.
    """

    def __init__(self, arch: ArchConfig) -> None:
        self.arch = arch
        self._layout: Dict[Tuple, int] = {}
        self.words: List[int] = []
        self.entry_points: Dict[str, int] = {}

    @staticmethod
    def _key(ops: List[MicroOp]) -> Tuple:
        return tuple((op.group, op.signal) for op in ops)

    def add_instruction(self, instruction: Instruction) -> int:
        """Place the instruction's microprogram; returns its entry address."""
        ops = microprogram(instruction, self.arch)
        key = self._key(ops)
        if key in self._layout:
            return self._layout[key]
        entry = len(self.words)
        if entry + len(ops) > 256:
            raise IsaError("decoder ROM exceeds the 8-bit microaddress space")
        for offset, op in enumerate(ops):
            is_last = offset == len(ops) - 1
            next_address = 0 if is_last else entry + offset + 1
            self.words.append(op.encode(next_address))
        self._layout[key] = entry
        self.entry_points[str(instruction.op.name)] = entry
        return entry

    def add_program(self, instructions: List[Instruction]) -> None:
        for instruction in instructions:
            self.add_instruction(instruction)

    @property
    def size_words(self) -> int:
        return len(self.words)

    def dump(self) -> str:
        lines = [f"; decoder ROM for {self.arch.name}: {self.size_words} words"]
        for address, word in enumerate(self.words):
            group = (word >> 13) & 0b111
            signal = (word >> 8) & 0b11111
            nxt = word & 0xFF
            lines.append(f"{address:02x}: {group:03b} {signal:05b} -> {nxt:02x}")
        return "\n".join(lines)
