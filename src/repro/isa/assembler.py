"""Two-pass assembler and disassembler for TEP programs.

The assembler-level representation "is mostly used to analyze the data-path
requirements of an application, and to compute timing estimates" (section
1), but a complete flow needs the real thing: this module resolves labels to
program-memory addresses, emits binary images (16-bit words, Harvard program
memory) and parses the textual syntax back, so program images can be stored,
diffed and loaded into the TEP simulator.

Textual syntax, one instruction per line::

    routine:  LDA   int[4]      ; comment
              ADD   #1
              STA   ext[260]
              JNZ   routine
              CBEQ  R2, equal_case
              TRET
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.isa.arch import StorageClass
from repro.isa.isa import (
    BRANCH_FUSED_OPS,
    CONTROL_TRANSFERS,
    Imm,
    Instruction,
    IsaError,
    JUMP_OPS,
    LabelRef,
    Mem,
    Op,
    Operand,
    PortRef,
    Reg,
    SignalRef,
    encode,
    encoded_length,
)


class AsmError(Exception):
    """Raised on assembly problems (duplicate/undefined labels, syntax)."""


@dataclass
class AssembledProgram:
    """A program with resolved label addresses and its binary image."""

    instructions: List[Instruction]
    labels: Dict[str, int]
    #: word address of each instruction in program memory
    addresses: List[int]
    words: List[int]

    @property
    def size_words(self) -> int:
        return len(self.words)


def resolve_labels(instructions: List[Instruction]) -> Tuple[Dict[str, int], List[int]]:
    """First pass: map labels to word addresses."""
    labels: Dict[str, int] = {}
    addresses: List[int] = []
    address = 0
    for instruction in instructions:
        if instruction.label is not None:
            if instruction.label in labels:
                raise AsmError(f"duplicate label {instruction.label!r}")
            labels[instruction.label] = address
        addresses.append(address)
        address += encoded_length(instruction)
    return labels, addresses


def assemble(instructions: List[Instruction]) -> AssembledProgram:
    """Resolve labels and produce the binary image."""
    labels, addresses = resolve_labels(instructions)

    def resolve(operand: Operand) -> Operand:
        if isinstance(operand, LabelRef):
            if operand.name not in labels:
                raise AsmError(f"undefined label {operand.name!r}")
            return LabelRef(operand.name, labels[operand.name])
        return operand

    resolved: List[Instruction] = []
    for instruction in instructions:
        target = instruction.target
        if target is not None:
            if target.name not in labels:
                raise AsmError(f"undefined label {target.name!r}")
            target = LabelRef(target.name, labels[target.name])
        resolved.append(replace(instruction,
                                operand=resolve(instruction.operand),
                                target=target))

    words: List[int] = []
    for instruction in resolved:
        words.extend(encode(instruction))
    return AssembledProgram(resolved, labels, addresses, words)


# ---------------------------------------------------------------------------
# text format
# ---------------------------------------------------------------------------

def emit_text(instructions: List[Instruction]) -> str:
    """Render a program in assembler syntax."""
    lines = []
    for instruction in instructions:
        label = f"{instruction.label}:" if instruction.label else ""
        operands = []
        if instruction.operand is not None:
            operands.append(str(instruction.operand))
        if instruction.target is not None:
            operands.append(str(instruction.target))
        text = f"{label:12s}{instruction.op.name:6s}{', '.join(operands)}"
        if instruction.comment:
            text = f"{text:40s}; {instruction.comment}"
        lines.append(text.rstrip())
    return "\n".join(lines) + "\n"


_LINE_RE = re.compile(
    r"""^\s*
    (?:(?P<label>[A-Za-z_.$][\w.$]*):)?\s*
    (?:(?P<op>[A-Za-z]+)
       (?:\s+(?P<operand>[^,;]+?))?
       (?:\s*,\s*(?P<target>[^;]+?))?
    )?\s*
    (?:;(?P<comment>.*))?$
    """,
    re.VERBOSE,
)

_OPERAND_PATTERNS = [
    (re.compile(r"^#(-?\d+)$"), lambda m: Imm(int(m.group(1)))),
    (re.compile(r"^R(\d+)$"), lambda m: Reg(int(m.group(1)))),
    (re.compile(r"^int\[(\d+)\]$"),
     lambda m: Mem(int(m.group(1)), StorageClass.INTERNAL)),
    (re.compile(r"^ext\[(\d+)\]$"),
     lambda m: Mem(int(m.group(1)), StorageClass.EXTERNAL)),
    (re.compile(r"^port\[(\d+)\]$"), lambda m: PortRef(int(m.group(1)))),
    (re.compile(r"^sig\[(\d+)\]$"), lambda m: SignalRef(int(m.group(1)))),
]


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    for pattern, build in _OPERAND_PATTERNS:
        match = pattern.match(text)
        if match:
            return build(match)
    if re.match(r"^[A-Za-z_.$][\w.$]*$", text):
        return LabelRef(text)
    raise AsmError(f"bad operand {text!r}")


def parse_text(text: str) -> List[Instruction]:
    """Parse assembler syntax back into instruction objects."""
    instructions: List[Instruction] = []
    pending_label: Optional[str] = None
    for line_number, line in enumerate(text.splitlines(), start=1):
        match = _LINE_RE.match(line)
        if match is None:
            raise AsmError(f"line {line_number}: bad syntax {line!r}")
        label = match.group("label")
        if label is not None:
            if pending_label is not None:
                raise AsmError(f"line {line_number}: two labels in a row")
            pending_label = label
        op_text = match.group("op")
        if op_text is None:
            continue
        try:
            op = Op[op_text.upper()]
        except KeyError:
            raise AsmError(f"line {line_number}: unknown opcode {op_text!r}")
        operand = None
        target = None
        if match.group("operand"):
            operand = _parse_operand(match.group("operand"))
        if match.group("target"):
            parsed = _parse_operand(match.group("target"))
            if not isinstance(parsed, LabelRef):
                raise AsmError(f"line {line_number}: branch target must be a label")
            target = parsed
        comment = (match.group("comment") or "").strip()
        # jump-family operands that parsed as labels are fine; signal ops
        # keep their numeric form
        instructions.append(Instruction(op, operand, target,
                                        pending_label, comment))
        pending_label = None
    if pending_label is not None:
        raise AsmError(f"dangling label {pending_label!r} at end of program")
    return instructions


def disassemble_words(words: List[int]) -> List[str]:
    """Best-effort disassembly of a binary image (for debugging dumps).

    Multi-word instructions cannot always be re-segmented without the
    original instruction list; this walks greedily and flags unknown
    opcodes.
    """
    lines = []
    index = 0
    known = {op.value: op for op in Op}
    while index < len(words):
        word = words[index]
        opcode = (word >> 10) & 0x3F
        mode = (word >> 8) & 0x3
        payload = word & 0xFF
        op = known.get(opcode)
        if op is None:
            lines.append(f"{index:04x}: .word {word:04x}")
            index += 1
            continue
        text = f"{index:04x}: {op.name} mode={mode} payload=0x{payload:02x}"
        consumed = 1
        if mode == 1 and payload == 0xFF and index + 1 < len(words):
            text += f" ext=0x{words[index + 1]:04x}"
            consumed += 1
        if op in BRANCH_FUSED_OPS and index + consumed < len(words):
            text += f" target=0x{words[index + consumed]:04x}"
            consumed += 1
        lines.append(text)
        index += consumed
    return lines
