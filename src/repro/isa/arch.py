"""Architecture configuration of a TEP / PSCP instance.

Section 3.3: "The TEP of an application is derived from a library of elements
consisting of hardware building blocks and associated microinstruction
sequences" — calculation units of varying size and functionality, with or
without register files and shifting capability, several ALU styles, and three
storage tiers (registers, internal RAM, external RAM).  TEPs can be
replicated into MIMD-style PSCP versions.

:class:`ArchConfig` is the single value object describing one such PSCP
version.  Everything downstream is a function of it:

* each instruction's microprogram (and therefore its cycle cost) —
  :mod:`repro.isa.microcode`;
* the code the compiler may emit (M/D instructions, fused compare-branch,
  two's-complement, barrel shifts, custom instructions) —
  :mod:`repro.isa.codegen`;
* the CLB area — :mod:`repro.hw.area`;
* the timing validator's parallel-sibling bounds (number of TEPs) —
  :mod:`repro.flow.timing`.

The iterative improvement loop (:mod:`repro.flow.improve`) walks through a
sequence of ``ArchConfig`` values, fixing timing violations in increasing
order of hardware cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple


class StorageClass(enum.Enum):
    """Where a variable lives (section 3.3's storage alternatives).

    "Fast, but more expensive registers, moderately fast and moderately
    expensive internal RAM, and slower, but cheaper external RAM."
    """

    REGISTER = "register"
    INTERNAL = "internal"
    EXTERNAL = "external"


@dataclass(frozen=True)
class CustomInstruction:
    """A fused single-cycle operation generated from an expression pattern.

    "Simple components such as shifters and registers can be combined to
    custom operations, which are derived from the assembler code.  These
    instructions execute within one clock cycle.  Care must be taken that
    such instructions do not become the critical paths inside the TEP."

    ``signature`` is the canonical serialization of the expression tree (see
    :func:`repro.isa.patterns.expression_signature`); ``operands`` is the
    number of distinct leaf variables; ``depth`` the operator depth, which is
    limited so the fused logic does not set the TEP's critical path.
    """

    name: str
    signature: str
    operands: int
    depth: int

    def __post_init__(self) -> None:
        if self.operands < 1:
            raise ValueError("custom instruction needs at least one operand")
        if self.depth < 1:
            raise ValueError("custom instruction needs at least one operator")


#: operator depth above which a fused expression would become the critical
#: path of the TEP ("complex expressions are broken up into smaller ones").
MAX_CUSTOM_DEPTH = 4

#: the basic TEP described in section 3.2
BASIC_DATA_WIDTH = 8
BASIC_INSTRUCTION_WIDTH = 16
BASIC_MICROINSTRUCTION_WIDTH = 16


@dataclass(frozen=True)
class ArchConfig:
    """One point in the PSCP architecture space."""

    name: str = "basic"
    #: data bus width in bits — 8 in the basic TEP, widened to 16 for the
    #: SMD example's final architecture
    data_width: int = BASIC_DATA_WIDTH
    #: instruction format width (constant in the paper)
    instruction_width: int = BASIC_INSTRUCTION_WIDTH
    #: calculation unit with multiply/divide capability (Table 4's "M/D")
    has_muldiv: bool = False
    #: ALU style with an additional comparator — enables the fused
    #: compare-and-branch the pattern matcher inserts for ``if (a == b)``
    has_comparator: bool = False
    #: ALU capable of two's complement in one operation (for ``x = -x``)
    has_negator: bool = False
    #: shifter capable of multi-bit shifts in one operation
    has_barrel_shifter: bool = False
    #: general-purpose registers beyond ACC and the operand register
    register_file_size: int = 0
    #: words of on-chip RAM
    internal_ram_words: int = 32
    #: extra wait-state cycles for each external-RAM access
    external_ram_wait_states: int = 2
    #: microprograms run through the peephole optimizer (redundant-jump
    #: removal) — Table 4's "optimized code"
    microcode_optimized: bool = False
    #: pipelined TEP ("future work", section 6): instruction fetch overlaps
    #: the previous instruction's execution, hiding the two fetch states;
    #: taken control transfers pay a flush penalty instead
    pipelined: bool = False
    #: number of Transition Execution Processors
    n_teps: int = 1
    #: fused expression instructions selected for this application
    custom_instructions: Tuple[CustomInstruction, ...] = ()
    #: designer-declared mutually-exclusive routine pairs; needed when
    #: n_teps > 1 so the scheduler's decode logic never runs them in parallel
    mutual_exclusions: FrozenSet[FrozenSet[str]] = frozenset()

    def __post_init__(self) -> None:
        if self.data_width not in (8, 16, 32):
            raise ValueError(f"unsupported data width {self.data_width}")
        if self.n_teps < 1:
            raise ValueError("need at least one TEP")
        if self.register_file_size < 0 or self.internal_ram_words < 0:
            raise ValueError("storage sizes must be non-negative")
        if self.external_ram_wait_states < 0:
            raise ValueError("wait states must be non-negative")
        for custom in self.custom_instructions:
            if custom.depth > MAX_CUSTOM_DEPTH:
                raise ValueError(
                    f"custom instruction {custom.name} exceeds the critical-"
                    f"path depth limit ({custom.depth} > {MAX_CUSTOM_DEPTH})")

    # -- derived quantities -------------------------------------------------
    def words_for(self, bit_width: int) -> int:
        """Data-bus words needed to hold a value of *bit_width* bits."""
        return max(1, -(-bit_width // self.data_width))

    def custom_by_signature(self, signature: str) -> Optional[CustomInstruction]:
        for custom in self.custom_instructions:
            if custom.signature == signature:
                return custom
        return None

    def mutually_exclusive(self, routine_a: str, routine_b: str) -> bool:
        return frozenset((routine_a, routine_b)) in self.mutual_exclusions

    def with_(self, **changes) -> "ArchConfig":
        """A copy with the given fields replaced (convenience wrapper)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary in the style of Table 4's architecture column."""
        parts = []
        if self.n_teps > 1:
            parts.append(f"{self.n_teps}x")
        parts.append(f"{self.data_width}bit")
        if self.has_muldiv:
            parts.append("M/D")
        parts.append("TEP")
        if self.pipelined:
            parts.append("pipelined")
        parts.append("optimized" if self.microcode_optimized else "unoptimized")
        if self.register_file_size:
            parts.append(f"+{self.register_file_size}reg")
        if self.custom_instructions:
            parts.append(f"+{len(self.custom_instructions)}custom")
        return " ".join(parts)


#: the minimal functional microcontroller of section 3.2
MINIMAL_TEP = ArchConfig(name="minimal")

#: the architecture the SMD example converges to before code optimization
#: (Table 4 row 2): one TEP, 16-bit bus, M/D calculation unit
MD16_TEP = ArchConfig(
    name="16bit-md",
    data_width=16,
    has_muldiv=True,
    internal_ram_words=64,
)


def storage_access_cycles(storage: StorageClass, arch: ArchConfig) -> int:
    """Extra cycles (beyond the base microprogram) to touch *storage*."""
    if storage is StorageClass.REGISTER:
        return 0
    if storage is StorageClass.INTERNAL:
        return 1
    return 1 + arch.external_ram_wait_states
