"""Expression pattern matching for instruction selection (section 4).

"After the simple optimizations, pattern matching is used: If, e.g., a
pattern of the form ``if ( a == b ) ... else ...`` is detected, a calculation
unit with an additional comparator is inserted; if patterns of the form
``x = -x`` are detected, an ALU capable of performing two's complement is
inserted.  Thus, a number of expressions and control structures can be
optimized.  The next level are custom instructions for arithmetic
expressions found in the transition routines.  Complex expressions are
broken up into smaller ones not to introduce long critical paths."

This module provides the *detection* side used by the improvement loop:

* :func:`find_comparator_sites` — equality tests between simple operands;
* :func:`find_negation_sites` — ``x = -x``-shaped assignments;
* :func:`find_custom_candidates` — fusable arithmetic expressions with
  their canonical signatures, ranked by estimated cycle savings.

The *application* side lives in the code generator, which consults the
:class:`~repro.isa.arch.ArchConfig` for the comparator/negator flags and the
selected :class:`~repro.isa.arch.CustomInstruction` signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.action.ast import (
    Assign,
    Binary,
    BinOp,
    BoolType,
    Call,
    COMPARISONS,
    Expr,
    Function,
    If,
    IntLiteral,
    IntType,
    LOGICALS,
    NameRef,
    Program,
    Unary,
    UnOp,
    VarDecl,
    While,
    walk_expr,
    walk_stmts,
)
from repro.isa.arch import MAX_CUSTOM_DEPTH, CustomInstruction

#: binary operators a fused calculation unit can implement combinationally
FUSABLE_BINOPS = {BinOp.ADD, BinOp.SUB, BinOp.AND, BinOp.OR, BinOp.XOR,
                  BinOp.SHL, BinOp.SHR}
FUSABLE_UNOPS = {UnOp.NEG, UnOp.BNOT}


def is_simple(expr: Expr) -> bool:
    """A leaf the datapath can source directly: variable or constant."""
    return isinstance(expr, (NameRef, IntLiteral))


# ---------------------------------------------------------------------------
# signatures
# ---------------------------------------------------------------------------

def expression_signature(expr: Expr) -> Optional[str]:
    """Canonical serialization of a fusable expression tree, or ``None``.

    Variable leaves become ``v<i>`` numbered by first use (so ``x + x`` and
    ``x + y`` get distinct signatures — they need different fused hardware);
    constants become ``c<value>`` (shift amounts and masks are baked into the
    fused unit).  Two expressions with the same signature can share one
    custom instruction.
    """
    env: Dict[str, int] = {}

    def serialize(node: Expr) -> Optional[str]:
        if isinstance(node, NameRef):
            index = env.setdefault(node.name, len(env))
            return f"v{index}"
        if isinstance(node, IntLiteral):
            return f"c{node.value}"
        if isinstance(node, Unary) and node.op in FUSABLE_UNOPS:
            inner = serialize(node.operand)
            return None if inner is None else f"({node.op.value}{inner})"
        if isinstance(node, Binary) and node.op in FUSABLE_BINOPS:
            left = serialize(node.left)
            right = serialize(node.right)
            if left is None or right is None:
                return None
            return f"({left}{node.op.value}{right})"
        return None

    return serialize(expr)


def evaluate_signature(signature: str, operands: List[int], mask: int) -> int:
    """Execute a fused expression's semantics (used by the TEP simulator).

    ``operands[i]`` is the value loaded for variable leaf ``v<i>``; the
    result is truncated to *mask* (the data-bus width).
    """
    pos = 0

    def parse() -> int:
        nonlocal pos
        ch = signature[pos]
        if ch == "v":
            pos += 1
            start = pos
            while pos < len(signature) and signature[pos].isdigit():
                pos += 1
            return operands[int(signature[start:pos])] & mask
        if ch == "c":
            pos += 1
            start = pos
            if pos < len(signature) and signature[pos] == "-":
                pos += 1
            while pos < len(signature) and signature[pos].isdigit():
                pos += 1
            return int(signature[start:pos]) & mask
        if ch != "(":
            raise ValueError(f"bad signature {signature!r} at {pos}")
        pos += 1  # '('
        if signature[pos] in "-~" and signature[pos + 1] in "v(c":
            unary = signature[pos]
            pos += 1
            value = parse()
            pos += 1  # ')'
            return ((-value) if unary == "-" else ~value) & mask
        left = parse()
        # operators: << and >> are two characters
        if signature[pos:pos + 2] in ("<<", ">>"):
            operator = signature[pos:pos + 2]
            pos += 2
        else:
            operator = signature[pos]
            pos += 1
        right = parse()
        pos += 1  # ')'
        ops = {"+": lambda: left + right, "-": lambda: left - right,
               "&": lambda: left & right, "|": lambda: left | right,
               "^": lambda: left ^ right,
               "<<": lambda: left << right, ">>": lambda: left >> right}
        return ops[operator]() & mask

    return parse()


def expression_depth(expr: Expr) -> int:
    """Operator depth of the tree (leaves are depth 0)."""
    if isinstance(expr, Unary):
        return 1 + expression_depth(expr.operand)
    if isinstance(expr, Binary):
        return 1 + max(expression_depth(expr.left),
                       expression_depth(expr.right))
    return 0


def leaf_variables(expr: Expr) -> List[str]:
    """Distinct variable leaves, in first-use order."""
    seen: List[str] = []
    for node in walk_expr(expr):
        if isinstance(node, NameRef) and node.name not in seen:
            seen.append(node.name)
    return seen


def operator_count(expr: Expr) -> int:
    return sum(1 for node in walk_expr(expr)
               if isinstance(node, (Binary, Unary)))


def is_fusable(expr: Expr, max_operands: int) -> bool:
    """Can *expr* become a single-cycle custom instruction?

    Requirements: every operator combinational (:data:`FUSABLE_BINOPS`),
    depth within the critical-path limit, at least two operators (otherwise
    the base ISA is just as fast), and no more leaf variables than the
    datapath can source at once.
    """
    signature = expression_signature(expr)
    if signature is None:
        return False
    if not 2 <= operator_count(expr):
        return False
    if expression_depth(expr) > MAX_CUSTOM_DEPTH:
        return False
    if len(leaf_variables(expr)) > max_operands:
        return False
    return True


# ---------------------------------------------------------------------------
# site discovery
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PatternSite:
    """One occurrence of an optimizable pattern."""

    routine: str
    kind: str          # 'comparator', 'negator', 'custom'
    detail: str        # human-readable description / signature


def _function_exprs(function: Function):
    for stmt in walk_stmts(function.body):
        if isinstance(stmt, Assign):
            yield stmt.value
        elif isinstance(stmt, VarDecl) and stmt.init is not None:
            yield stmt.init
        elif isinstance(stmt, If):
            yield stmt.cond
        elif isinstance(stmt, While):
            yield stmt.cond


def find_comparator_sites(program: Program) -> List[PatternSite]:
    """``if (a == b)``-style tests between simple operands."""
    sites = []
    for function in program.functions:
        for stmt in walk_stmts(function.body):
            if isinstance(stmt, (If, While)):
                cond = stmt.cond
                if (isinstance(cond, Binary)
                        and cond.op in (BinOp.EQ, BinOp.NE)
                        and is_simple(cond.left) and is_simple(cond.right)):
                    sites.append(PatternSite(
                        function.name, "comparator",
                        f"{cond.left} {cond.op.value} {cond.right}"))
    return sites


def find_negation_sites(program: Program) -> List[PatternSite]:
    """``x = -x`` assignments (and ``x = -y`` more generally)."""
    sites = []
    for function in program.functions:
        for stmt in walk_stmts(function.body):
            if (isinstance(stmt, Assign) and stmt.op is None
                    and isinstance(stmt.value, Unary)
                    and stmt.value.op is UnOp.NEG
                    and is_simple(stmt.value.operand)):
                sites.append(PatternSite(
                    function.name, "negator",
                    f"{stmt.target} = {stmt.value}"))
    return sites


@dataclass(frozen=True)
class CustomCandidate:
    """A fusable expression with its estimated per-execution saving."""

    signature: str
    routine: str
    text: str
    operators: int
    operands: int
    depth: int
    occurrences: int = 1

    @property
    def estimated_saving(self) -> int:
        """Rough cycles saved per execution: each fused operator would have
        been a separate instruction (~4 cycles); the fused version costs one
        instruction (~3 cycles) after operand loads, which both need."""
        return max(0, self.operators * 4 - 3) * self.occurrences

    def to_instruction(self, index: int) -> CustomInstruction:
        return CustomInstruction(
            name=f"cust{index}_{self.routine}",
            signature=self.signature,
            operands=max(1, self.operands),
            depth=self.depth,
        )


def find_custom_candidates(program: Program,
                           max_operands: int = 2) -> List[CustomCandidate]:
    """All fusable expressions, deduplicated by signature, ranked by saving.

    ``max_operands`` reflects the datapath: ACC + the operand register give
    two source operands; a register file adds more.
    """
    by_signature: Dict[str, CustomCandidate] = {}
    for function in program.functions:
        for expr in _function_exprs(function):
            for node in walk_expr(expr):
                if not is_fusable(node, max_operands):
                    continue
                signature = expression_signature(node)
                assert signature is not None
                if signature in by_signature:
                    existing = by_signature[signature]
                    by_signature[signature] = CustomCandidate(
                        signature, existing.routine, existing.text,
                        existing.operators, existing.operands, existing.depth,
                        existing.occurrences + 1)
                else:
                    by_signature[signature] = CustomCandidate(
                        signature, function.name, str(node),
                        operator_count(node), len(leaf_variables(node)),
                        expression_depth(node))
                break  # fuse outermost node only; inner nodes are covered
    return sorted(by_signature.values(),
                  key=lambda c: c.estimated_saving, reverse=True)
