"""Synthetic chart generators for scalability studies.

The paper's PSCP is "scalable with respect to the number of processing
elements as well as parameters such as bus widths and register file sizes";
these generators produce parameterized reactive workloads to sweep those
knobs beyond the single industrial example:

* :func:`parallel_servers` — an AND-composition of n independent
  request/serve regions (embarrassingly parallel: more TEPs should help
  almost linearly up to n);
* :func:`pipeline_chart` — a chain of n stages passing work along
  (serial: more TEPs should barely help);
* :func:`wide_decoder` — one OR-state with n event-triggered transitions
  (stresses SLA size / CR width, not TEP count).

Each generator returns ``(chart, routines_source)`` ready for
:func:`repro.flow.build.build_system`.
"""

from __future__ import annotations

from typing import Tuple

from repro.statechart.builder import ChartBuilder
from repro.statechart.model import Chart


def parallel_servers(n_regions: int, work_iterations: int = 8
                     ) -> Tuple[Chart, str]:
    """n parallel regions, each serving its own request event."""
    if n_regions < 2:
        raise ValueError("need at least 2 regions for an AND composition")
    b = ChartBuilder(f"servers{n_regions}")
    b.event("START")
    for index in range(n_regions):
        b.event(f"REQ{index}", period=2000)
    with b.or_state("Top", default="Boot"):
        b.basic("Boot").transition("Serving", label="START")
        with b.and_state("Serving"):
            for index in range(n_regions):
                with b.or_state(f"R{index}", default=f"Wait{index}"):
                    b.basic(f"Wait{index}").transition(
                        f"Wait{index}",
                        label=f"REQ{index}/Serve{index}()")
    chart = b.build()

    routines = ["int:16 served[16];"]
    for index in range(n_regions):
        routines.append(f"""
void Serve{index}() {{
  int:16 i = 0;
  int:16 acc = 0;
  @bound({work_iterations}) while (i < {work_iterations}) {{
    acc = acc + i;
    i = i + 1;
  }}
  served[{index % 16}] = acc;
}}
""")
    return chart, "\n".join(routines)


def pipeline_chart(n_stages: int, work_iterations: int = 6
                   ) -> Tuple[Chart, str]:
    """A serial pipeline: stage i hands to stage i+1 via internal events."""
    if n_stages < 2:
        raise ValueError("need at least 2 stages")
    b = ChartBuilder(f"pipeline{n_stages}")
    b.event("FEED", period=6000)
    for index in range(1, n_stages):
        b.event(f"PASS{index}")
    with b.or_state("Line", default="S0"):
        for index in range(n_stages):
            state = b.basic(f"S{index}")
            trigger = "FEED" if index == 0 else f"PASS{index}"
            target = f"S{(index + 1) % n_stages}"
            state.transition(target, label=f"{trigger}/Stage{index}()")
    chart = b.build()

    routines = ["int:16 token;"]
    for index in range(n_stages):
        raise_line = (f"Raise(PASS{index + 1});"
                      if index + 1 < n_stages else "")
        routines.append(f"""
void Stage{index}() {{
  int:16 i = 0;
  @bound({work_iterations}) while (i < {work_iterations}) {{
    token = token + {index + 1};
    i = i + 1;
  }}
  {raise_line}
}}
""")
    return chart, "\n".join(routines)


def wide_decoder(n_commands: int) -> Tuple[Chart, str]:
    """One dispatcher state with n command events (SLA-bound workload)."""
    if n_commands < 1:
        raise ValueError("need at least one command")
    b = ChartBuilder(f"decoder{n_commands}")
    for index in range(n_commands):
        b.event(f"CMD{index}", period=4000)
    with b.or_state("Top", default="Dispatch"):
        dispatch = b.basic("Dispatch")
        for index in range(n_commands):
            dispatch.transition("Dispatch", label=f"CMD{index}/Do{index}()")
    chart = b.build()

    routines = ["int:16 count;"]
    for index in range(n_commands):
        routines.append(
            f"void Do{index}() {{ count = count + {index + 1}; }}")
    return chart, "\n".join(routines)
