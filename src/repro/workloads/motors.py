"""Stepper-motor physics for the SMD pickup head (Fig. 7, section 5).

The head carries four stepper motors:

* X and Y: maximum step frequency 50 kHz, 0.025 mm/step, maximum velocity
  1.25 m/s, maximum acceleration 10 m/s²; "the X and Y motors have to be
  accelerated and decelerated in a precise way, because of inertia"
  (trapezoidal velocity profiles);
* Z and φ: 9 kHz, moving uniformly (constant step rate); one φ step is 0.1°.

"The motors are set in motion by counters that issue a pulse on zero."  The
controller must reload the X/Y counters within 300 cycles of a 15 MHz
reference clock, and the φ counter within 1600 cycles (Table 2).

This module is the *environment-side* model: given a commanded move, it
produces the step-pulse event times the controller must service, and tracks
position so closed-loop tests can check the head actually arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: the reference clock of the example (section 5)
REFERENCE_CLOCK_HZ = 15_000_000

#: Table 2, derived from the motor step rates at the reference clock
XY_DEADLINE_CYCLES = 300
PHI_DEADLINE_CYCLES = 1600
DATA_VALID_PERIOD_CYCLES = 1500


@dataclass(frozen=True)
class MotorSpec:
    """Physical parameters of one stepper motor axis."""

    name: str
    max_step_hz: float
    step_size: float          # metres (or degrees for phi)
    max_velocity: float       # units/s; None-like 0 means rate-limited only
    max_acceleration: float   # units/s^2; 0 => uniform (no ramp)

    @property
    def min_step_interval_cycles(self) -> int:
        return int(REFERENCE_CLOCK_HZ / self.max_step_hz)


#: Fig. 7 / section 5 values
X_MOTOR = MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 10.0)
Y_MOTOR = MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 10.0)
Z_MOTOR = MotorSpec("Z", 9_000.0, 0.025e-3, 0.225, 0.0)
PHI_MOTOR = MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0)

SMD_MOTORS = {m.name: m for m in (X_MOTOR, Y_MOTOR, Z_MOTOR, PHI_MOTOR)}


class ProfileError(Exception):
    """Raised for physically impossible move requests."""


@dataclass
class TrapezoidalProfile:
    """Velocity profile of one move: accelerate, cruise, decelerate.

    Computed in step units: the profile yields, for each step index, the
    time (seconds) at which that step pulse must occur.  For uniform motors
    (max_acceleration == 0) this degenerates to equally spaced steps.
    """

    spec: MotorSpec
    steps: int

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ProfileError("steps must be non-negative")

    def step_times(self) -> List[float]:
        if self.steps == 0:
            return []
        spec = self.spec
        if spec.max_acceleration <= 0:
            # uniform motor: steps at the maximum step rate
            interval = 1.0 / spec.max_step_hz
            return [(index + 1) * interval for index in range(self.steps)]
        distance = self.steps * spec.step_size
        # distance to reach max velocity
        ramp_distance = spec.max_velocity ** 2 / (2 * spec.max_acceleration)
        if 2 * ramp_distance <= distance:
            peak_velocity = spec.max_velocity
        else:
            peak_velocity = math.sqrt(distance * spec.max_acceleration)
        ramp_time = peak_velocity / spec.max_acceleration
        ramp_distance = peak_velocity ** 2 / (2 * spec.max_acceleration)
        cruise_distance = max(0.0, distance - 2 * ramp_distance)
        cruise_time = (cruise_distance / peak_velocity
                       if peak_velocity > 0 else 0.0)
        total_time = 2 * ramp_time + cruise_time

        times = []
        for index in range(1, self.steps + 1):
            s = index * spec.step_size
            if s <= ramp_distance:
                t = math.sqrt(2 * s / spec.max_acceleration)
            elif s <= ramp_distance + cruise_distance:
                t = ramp_time + (s - ramp_distance) / peak_velocity
            else:
                s_remaining = distance - s
                t_remaining = math.sqrt(
                    max(0.0, 2 * s_remaining / spec.max_acceleration))
                t = total_time - t_remaining
            times.append(t)
        return times

    def duration(self) -> float:
        times = self.step_times()
        return times[-1] if times else 0.0

    def max_step_rate(self) -> float:
        """The peak instantaneous step rate; must respect the spec."""
        times = self.step_times()
        if len(times) < 2:
            return 0.0
        best = 0.0
        for a, b in zip(times, times[1:]):
            if b > a:
                best = max(best, 1.0 / (b - a))
        return best

    def pulse_cycles(self) -> List[int]:
        """Step-pulse times in reference-clock cycles."""
        return [int(round(t * REFERENCE_CLOCK_HZ)) for t in self.step_times()]


@dataclass
class Motor:
    """Position-tracking state of one axis, driven by pulse counters."""

    spec: MotorSpec
    position_steps: int = 0
    _profile: Optional[TrapezoidalProfile] = None
    _pulses: List[int] = field(default_factory=list)
    _pulse_cursor: int = 0
    _direction: int = 1
    _start_cycle: int = 0

    @property
    def moving(self) -> bool:
        return self._pulse_cursor < len(self._pulses)

    @property
    def has_work(self) -> bool:
        """True once a move has been commanded (finished or not)."""
        return bool(self._pulses)

    @property
    def steps_remaining(self) -> int:
        return len(self._pulses) - self._pulse_cursor

    def command_move(self, steps: int, start_cycle: int) -> None:
        """Start a move of *steps* (sign = direction) at *start_cycle*."""
        if self.moving:
            raise ProfileError(f"motor {self.spec.name} is already moving")
        self._direction = 1 if steps >= 0 else -1
        self._profile = TrapezoidalProfile(self.spec, abs(steps))
        self._pulses = self._profile.pulse_cycles()
        self._pulse_cursor = 0
        self._start_cycle = start_cycle

    def pulses_between(self, start: int, end: int) -> List[int]:
        """Absolute cycle times of pulses in (start, end]; advances state."""
        fired = []
        while self._pulse_cursor < len(self._pulses):
            when = self._start_cycle + self._pulses[self._pulse_cursor]
            if when > end:
                break
            if when > start:
                fired.append(when)
            self.position_steps += self._direction
            self._pulse_cursor += 1
        return fired

    def finish_time(self) -> Optional[int]:
        if self._profile is None or not self._pulses:
            return None
        return self._start_cycle + self._pulses[-1]


def move_duration_cycles(spec: MotorSpec, steps: int) -> int:
    """Convenience: total cycles for a move of *steps* on *spec*."""
    profile = TrapezoidalProfile(spec, abs(steps))
    pulses = profile.pulse_cycles()
    return pulses[-1] if pulses else 0


def steps_for_distance(spec: MotorSpec, distance: float) -> int:
    """Steps needed to travel *distance* (same units as step_size)."""
    return int(round(distance / spec.step_size))
