"""The SMD pickup-head controller (section 5, Figs. 5/6, Tables 2-4).

The controller of a pickup head placing SMD components on a PCB: four
stepper motors (X, Y at 50 kHz; Z, φ at 9 kHz), commands arriving from a
central controller every 1500 reference-clock cycles, X/Y counter updates
due every 300 cycles (Table 2).

The chart combines the top-level chart of Fig. 6 with the motor-control
chart of Fig. 5 inlined at ``ReachPosition`` (where the paper's ``@MoveX``/
``@MoveY``/``@MOVE_PHI`` references point):

* ``Assembly`` (OR): ``Off`` → ``Idle1`` → ``Operation`` (AND) / ``Errstate``
* ``Operation`` = ``DataPreparation`` ∥ ``ReachPosition``
* ``DataPreparation`` (OR): ``OpcodeReady``, ``EmptyBuf``, ``Bounds``,
  ``NoData`` — the command decode/parameter pipeline
* ``ReachPosition`` (OR): ``Idle2``, the three-way parallel ``Moving``
  composite of Fig. 5 (``MoveX`` ∥ ``MoveY`` ∥ ``MovePhi``), each region a
  ``Start → Run → End`` cycle driven by the motor counters.

The action routines are *reconstructions*: the paper's Siemens sources are
not available, so each routine implements the operation its name implies
(command byte handling, trapezoid parameter computation, counter reload with
the 16-bit multiply/divide that motivates the M/D calculation unit), sized
so that the reference architecture's static transition costs land on the
paper's Table 3 event-cycle lengths.  The calibration targets live in
:data:`TABLE3_PAPER` / :data:`TABLE2_PAPER`; EXPERIMENTS.md records the
measured-vs-paper deltas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.statechart.builder import ChartBuilder
from repro.statechart.model import Chart, PortKind, PortDirection

# ---------------------------------------------------------------------------
# Table 2: the timing constraints (cycles of the 15 MHz reference clock)
# ---------------------------------------------------------------------------

TABLE2_PAPER: Dict[str, int] = {
    "DATA_VALID": 1500,
    "X_PULSE": 300,
    "Y_PULSE": 300,
    "PHI_PULSE": 1600,
}

#: Table 3 as printed in the paper: cycle states -> length.
TABLE3_PAPER: List[Tuple[Tuple[str, ...], int]] = [
    (("Idle1", "ReachPosition", "Idle1"), 235),
    (("OpcodeReady", "OpcodeReady"), 747),
    (("Idle1", "OpcodeReady"), 105),
    (("OpcodeReady", "EmptyBuf", "Idle1"), 772),
    (("OpcodeReady", "EmptyBuf", "Bounds", "Idle1"), 1414),
    (("OpcodeReady", "EmptyBuf", "Bounds", "NoData"), 2041),
    (("NoData", "OpcodeReady"), 747),
    (("NoData", "Idle1"), 130),
    (("NoData", "Errstate", "Idle1"), 180),
    (("RunX", "RunX"), 878),
    (("RunY", "RunY"), 878),
    (("RunPhi", "RunPhi"), 878),
]

#: Table 4 as printed in the paper:
#: architecture -> (area CLBs, X/Y critical path, DATA_VALID critical path)
TABLE4_PAPER: Dict[str, Tuple[int, int, int]] = {
    "1 minimal TEP": (224, 1000, 3000),          # paper prints "> 1000/3000"
    "16bit M/D TEP, unoptimized code": (421, 878, 2041),
    "16bit M/D TEP, optimized code": (421, 524, 1317),
    "2 16bit M/D TEP, unoptimized code": (773, 469, 1081),
    "2 16bit M/D TEP, optimized code": (773, 282, 699),
}

#: routine pairs the designer declares mutually exclusive before adding the
#: second TEP (they share the command buffer / parameter store)
SMD_MUTUAL_EXCLUSIONS: FrozenSet[FrozenSet[str]] = frozenset({
    frozenset({"GetByte", "DecodeOpcode"}),
    frozenset({"GetByte", "LoadNext"}),
    frozenset({"DecodeOpcode", "LoadNext"}),
    frozenset({"PrepareMove", "StartMove"}),
})


def smd_chart() -> Chart:
    """Build the combined Fig. 5 + Fig. 6 statechart."""
    b = ChartBuilder("smd_pickup_head")

    # events (Table 2 periods on the constrained ones)
    b.event("POWER")
    b.event("INIT")
    b.event("ALLRESET")
    b.event("ERROR")
    b.event("DATA_VALID", period=TABLE2_PAPER["DATA_VALID"], port="PE_DATA")
    b.event("END_DATA")
    b.event("BUF_EMPTY")
    b.event("X_PULSE", period=TABLE2_PAPER["X_PULSE"], port="PE_XPULSE")
    b.event("Y_PULSE", period=TABLE2_PAPER["Y_PULSE"], port="PE_YPULSE")
    b.event("PHI_PULSE", period=TABLE2_PAPER["PHI_PULSE"], port="PE_PHIPULSE")
    b.event("X_STEPS")
    b.event("Y_STEPS")
    b.event("PHI_STEPS")
    b.event("END_MOVE")
    b.event("GRAB_RELEASE")

    # conditions
    b.condition("MOVEMENT")
    b.condition("XFINISH")
    b.condition("YFINISH")
    b.condition("PHIFINISH")

    # external ports (addresses echo the 0700-range of Fig. 2b)
    b.port("PE_DATA", PortKind.EVENT, width=1, address=0o700,
           direction=PortDirection.INPUT)
    b.port("PE_XPULSE", PortKind.EVENT, width=1, address=0o701,
           direction=PortDirection.INPUT)
    b.port("PE_YPULSE", PortKind.EVENT, width=1, address=0o702,
           direction=PortDirection.INPUT)
    b.port("PE_PHIPULSE", PortKind.EVENT, width=1, address=0o703,
           direction=PortDirection.INPUT)
    b.port("CE0", PortKind.CONDITION, width=1, address=0o712,
           direction=PortDirection.BIDIRECTIONAL)
    b.port("Buffer", PortKind.DATA, width=8, address=0o717,
           direction=PortDirection.BIDIRECTIONAL)
    b.port("Status", PortKind.DATA, width=8, address=0o720,
           direction=PortDirection.OUTPUT)
    b.port("XMotor", PortKind.DATA, width=8, address=0o721,
           direction=PortDirection.OUTPUT)
    b.port("YMotor", PortKind.DATA, width=8, address=0o722,
           direction=PortDirection.OUTPUT)
    b.port("PhiMotor", PortKind.DATA, width=8, address=0o723,
           direction=PortDirection.OUTPUT)

    with b.or_state("Assembly", default="Off"):
        b.basic("Off").transition("Idle1", label="POWER")
        b.basic("Idle1").transition("Operation", label="[DATA_VALID]/GetByte()")
        with b.and_state("Operation") as operation:
            with b.or_state("DataPreparation", default="OpcodeReady"):
                opcode_ready = b.basic("OpcodeReady")
                opcode_ready.transition(
                    "OpcodeReady", label="[DATA_VALID]/DecodeOpcode()")
                opcode_ready.transition(
                    "EmptyBuf", label="END_DATA/PrepareMove()")
                empty_buf = b.basic("EmptyBuf")
                empty_buf.transition("Idle1", label="BUF_EMPTY/RequestData()")
                empty_buf.transition(
                    "Bounds",
                    label="not (X_PULSE or Y_PULSE)/PhiParameters()")
                bounds = b.basic("Bounds")
                bounds.transition(
                    "Idle1",
                    label="not (X_PULSE or Y_PULSE) [not MOVEMENT]"
                          "/AbortMove()")
                bounds.transition(
                    "NoData",
                    label="not (X_PULSE or Y_PULSE) [MOVEMENT]/StartMove()")
                b.basic("NoData").transition(
                    "OpcodeReady", label="[DATA_VALID]/LoadNext()")
            with b.or_state("ReachPosition", default="Idle2"):
                b.basic("Idle2").transition("Moving", label="[MOVEMENT]")
                with b.and_state("Moving") as moving:
                    with b.or_state("MoveX", default="XStart2"):
                        b.basic("XStart2").transition(
                            "RunX", label="/StartMotor(MX, XPARAMS)")
                        run_x = b.basic("RunX")
                        run_x.transition("RunX", label="X_PULSE/DeltaT(MX)")
                        run_x.transition(
                            "XEnd2", label="X_STEPS/SetTrue(XFINISH)")
                        b.basic("XEnd2")
                    with b.or_state("MoveY", default="YStart2"):
                        b.basic("YStart2").transition(
                            "RunY", label="/StartMotor(MY, YPARAMS)")
                        run_y = b.basic("RunY")
                        run_y.transition("RunY", label="Y_PULSE/DeltaT(MY)")
                        run_y.transition(
                            "YEnd2", label="Y_STEPS/SetTrue(YFINISH)")
                        b.basic("YEnd2")
                    with b.or_state("MovePhi", default="PhiStart"):
                        b.basic("PhiStart").transition(
                            "RunPhi", label="/StartMotor(MPHI, PHIPARAMS)")
                        run_phi = b.basic("RunPhi")
                        run_phi.transition(
                            "RunPhi", label="PHI_PULSE/DeltaT(MPHI)")
                        run_phi.transition(
                            "PhiEnd", label="PHI_STEPS/SetTrue(PHIFINISH)")
                        b.basic("PhiEnd")
                moving.transition(
                    "Idle2",
                    label="END_MOVE [XFINISH and YFINISH and PHIFINISH]"
                          "/FinishMove()")
        operation.transition(
            "Idle1", label="INIT or ALLRESET/InitializeAll()")
        operation.transition("Errstate", label="ERROR/Stop()")
        b.basic("Errstate").transition(
            "Idle1", label="INIT or ALLRESET/InitializeAll()")
    return b.build()


#: The reconstructed transition routines in the intermediate C dialect.
#: Loop bounds are the calibration knobs: they size each routine's WCET so
#: the Table 3 event-cycle lengths match the paper on the reference
#: architecture (16-bit M/D TEP, unoptimized code, one TEP).
SMD_ROUTINES = """
enum Motor {MX, MY, MPHI};
enum ParamSet {XPARAMS, YPARAMS, PHIPARAMS};

int:16 cmd_buffer[8];
int:16 buf_len;
int:16 opcode;
int:16 checksum;

int:16 target[3];
int:16 vmax[3];
int:16 accel[3];
int:16 velocity[3];
int:16 remaining[3];
int:16 reload[3];

int:16 NewPhi;
int:16 OldPhi;
int:16 PhiParam;

void GetByte() {
  cmd_buffer[buf_len & 7] = Buffer;
  buf_len = buf_len + 1;
  checksum = checksum + 1;
}

void DecodeOpcode() {
  opcode = cmd_buffer[0] & 63;
  checksum = cmd_buffer[0] + cmd_buffer[1];
  checksum = checksum + cmd_buffer[2];
  checksum = checksum + cmd_buffer[3];
  checksum = (checksum + cmd_buffer[4]) & 255;
  buf_len = buf_len & 7;
  opcode = opcode + 1;
}

void PrepareMove() {
  target[MX] = cmd_buffer[1];
  buf_len = 0;
  SetTrue(MOVEMENT);
}

void RequestData() {
  cmd_buffer[0] = 0;
  cmd_buffer[1] = 0;
  cmd_buffer[2] = 0;
  cmd_buffer[3] = 0;
  cmd_buffer[4] = 0;
  cmd_buffer[5] = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  PhiParam = 0;
  OldPhi = 0;
  NewPhi = 0;
  target[MX] = 0;
  target[MY] = 0;
  SetFalse(MOVEMENT);
  Status = 1;
}

void PhiParameters() {
  PhiParam = NewPhi - OldPhi;
}

void AbortMove() {
  velocity[MX] = 0;
  velocity[MY] = 0;
  velocity[MPHI] = 0;
  remaining[MX] = 0;
  remaining[MY] = 0;
  remaining[MPHI] = 0;
  reload[MX] = 0;
  reload[MY] = 0;
  reload[MPHI] = 0;
  target[MX] = 0;
  target[MY] = 0;
  target[MPHI] = 0;
  XMotor = 0;
  YMotor = 0;
  PhiMotor = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  PhiParam = 0;
  OldPhi = 0;
  NewPhi = 0;
  SetFalse(MOVEMENT);
  Status = 2;
}

void StartMove() {
  int:16 ramp;
  ramp = (vmax[MX] * vmax[MX]) / (accel[MX] + 1);
  if (ramp > target[MX]) { vmax[MX] = ramp - target[MX]; }
  ramp = (vmax[MY] * vmax[MY]) / (accel[MY] + 1);
  if (ramp > target[MY]) { vmax[MY] = ramp - target[MY]; }
  remaining[MX] = target[MX];
  remaining[MY] = target[MY];
  remaining[MPHI] = target[MPHI];
  velocity[MX] = accel[MX];
  velocity[MY] = accel[MY];
  velocity[MPHI] = accel[MPHI];
  OldPhi = NewPhi;
  SetFalse(XFINISH);
  SetTrue(MOVEMENT);
}

void LoadNext() {
  cmd_buffer[0] = cmd_buffer[1];
  cmd_buffer[1] = cmd_buffer[2];
  cmd_buffer[2] = cmd_buffer[3];
  cmd_buffer[3] = cmd_buffer[4];
  cmd_buffer[4] = cmd_buffer[5];
  cmd_buffer[5] = cmd_buffer[6];
  cmd_buffer[6] = cmd_buffer[7];
  cmd_buffer[7] = 0;
  opcode = cmd_buffer[0] & 63;
  checksum = checksum + cmd_buffer[1];
  buf_len = buf_len - 1;
}

void InitializeAll() {
  velocity[MX] = 0;
  velocity[MY] = 0;
  velocity[MPHI] = 0;
  remaining[MX] = 0;
  remaining[MY] = 0;
  buf_len = 0;
  checksum = 0;
  opcode = 0;
  Status = 0;
  SetFalse(MOVEMENT);
  SetFalse(XFINISH);
  SetFalse(YFINISH);
  SetFalse(PHIFINISH);
}

void Stop() {
  XMotor = 0;
  YMotor = 0;
  PhiMotor = 0;
}

void DeltaT(int:16 m) {
  int:16 v;
  v = velocity[m] + accel[m];
  velocity[m] = v;
  reload[m] = (15000 / (v + 1)) + 1;
}

void StartMotor(int:16 m, int:16 p) {
  velocity[m] = accel[m];
  reload[m] = 15000 / (accel[m] + 1);
}

void FinishMove() {
  SetFalse(MOVEMENT);
  SetFalse(XFINISH);
  SetFalse(YFINISH);
  SetFalse(PHIFINISH);
  Raise(END_DATA);
  Status = 4;
}
"""


#: Shipped model-check properties (``repro check --workload smd``).  The
#: never-properties pin the paper's safety story (the error state aborts
#: motion; Idle1 only waits for data); the deadline declarations upgrade
#: the timing validator's heuristic event-cycle estimates to bounded-model
#: -checking proofs over every reachable configuration.
SMD_PROPERTIES = """\
never Errstate while Moving
never MOVEMENT in Idle1
deadline DATA_VALID
deadline X_PULSE
deadline Y_PULSE
deadline PHI_PULSE
"""
