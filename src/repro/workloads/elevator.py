"""A second case study: a two-cab elevator-bank controller.

The paper's intro motivates the PSCP with "industrial applications" beyond
the single SMD example — controllers that juggle many simultaneous external
events under hard reaction deadlines.  An elevator bank is the classic one:

* two cabs move independently (an AND composition — the PSCP's parallel
  TEPs map directly onto it);
* hall calls arrive asynchronously and must be acknowledged quickly;
* the **door-obstruction deadline** is safety-critical: a DOOR_BLOCKED
  event while closing must reopen the door within a hard bound;
* floor sensors tick as the cab moves (position tracking, like the SMD's
  pulse counters).

Per cab the chart is::

    CabN: Parked --CALL--> Selecting --/PlanN()--> MovingN
          MovingN: floor sensor self-loop (TrackN) until AT_FLOOR
          DoorsN: Opening -> Open -> Closing -> shut
          Closing --DOOR_BLOCKED--> Opening   (the hard deadline)

The module provides the chart, the routines, and deadline constants; tests
and the example drive it through the standard flow.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.statechart.builder import ChartBuilder
from repro.statechart.model import Chart, PortKind, PortDirection

#: reaction deadlines in reference-clock cycles
ELEVATOR_CONSTRAINTS: Dict[str, int] = {
    "DOOR_BLOCKED0": 400,     # safety: reopen within 400 cycles
    "DOOR_BLOCKED1": 400,
    "FLOOR_SENSOR0": 900,     # position tracking while moving
    "FLOOR_SENSOR1": 900,
    "HALL_CALL": 2500,        # acknowledge a call
}

#: routines sharing the call queue must never run in parallel
ELEVATOR_MUTUAL_EXCLUSIONS: FrozenSet[FrozenSet[str]] = frozenset({
    frozenset({"QueueCall", "Plan0"}),
    frozenset({"QueueCall", "Plan1"}),
    frozenset({"Plan0", "Plan1"}),
})


def elevator_chart() -> Chart:
    b = ChartBuilder("elevator_bank")
    b.event("POWER_ON")
    b.event("HALL_CALL", period=ELEVATOR_CONSTRAINTS["HALL_CALL"],
            port="PE_CALL")
    for cab in (0, 1):
        b.event(f"DISPATCH{cab}")
        b.event(f"FLOOR_SENSOR{cab}",
                period=ELEVATOR_CONSTRAINTS[f"FLOOR_SENSOR{cab}"],
                port=f"PE_FS{cab}")
        b.event(f"AT_FLOOR{cab}")
        b.event(f"DOOR_BLOCKED{cab}",
                period=ELEVATOR_CONSTRAINTS[f"DOOR_BLOCKED{cab}"],
                port=f"PE_DB{cab}")
        b.event(f"DOOR_TIMER{cab}")
        b.event(f"DOORS_SHUT{cab}")
        b.condition(f"BUSY{cab}")

    b.port("PE_CALL", PortKind.EVENT, width=1, address=0o730)
    b.port("CallFloor", PortKind.DATA, width=8, address=0o731,
           direction=PortDirection.INPUT)
    for cab in (0, 1):
        b.port(f"PE_FS{cab}", PortKind.EVENT, width=1, address=0o732 + cab)
        b.port(f"PE_DB{cab}", PortKind.EVENT, width=1, address=0o734 + cab)
        b.port(f"Motor{cab}", PortKind.DATA, width=8,
               address=0o736 + cab, direction=PortDirection.OUTPUT)
        b.port(f"Door{cab}", PortKind.DATA, width=8,
               address=0o740 + cab, direction=PortDirection.OUTPUT)

    with b.or_state("Bank", default="Off"):
        b.basic("Off").transition("Running", label="POWER_ON/InitBank()")
        with b.and_state("Running"):
            with b.or_state("Dispatcher", default="IdleD"):
                b.basic("IdleD").transition(
                    "Assigning", label="HALL_CALL/QueueCall()")
                assigning = b.basic("Assigning")
                assigning.transition(
                    "IdleD", label="DISPATCH0 or DISPATCH1/ClearCall()")
                assigning.transition(
                    "Assigning", label="HALL_CALL/QueueCall()")
            for cab in (0, 1):
                with b.or_state(f"Cab{cab}", default=f"Parked{cab}"):
                    b.basic(f"Parked{cab}").transition(
                        f"Moving{cab}",
                        label=f"DISPATCH{cab}/Plan{cab}()")
                    moving = b.basic(f"Moving{cab}")
                    moving.transition(
                        f"Moving{cab}",
                        label=f"FLOOR_SENSOR{cab}/Track{cab}()")
                    moving.transition(
                        f"Opening{cab}",
                        label=f"AT_FLOOR{cab}/StopCab{cab}()")
                    b.basic(f"Opening{cab}").transition(
                        f"DoorOpen{cab}",
                        label=f"DOOR_TIMER{cab}/HoldDoor{cab}()")
                    b.basic(f"DoorOpen{cab}").transition(
                        f"Closing{cab}",
                        label=f"DOOR_TIMER{cab}/DriveDoor{cab}()")
                    closing = b.basic(f"Closing{cab}")
                    closing.transition(
                        f"Opening{cab}",
                        label=f"DOOR_BLOCKED{cab}/Reopen{cab}()")
                    closing.transition(
                        f"Parked{cab}",
                        label=f"DOORS_SHUT{cab}/ParkCab{cab}()")
    return b.build()


def _cab_routines(cab: int) -> str:
    return f"""
void Plan{cab}() {{
  int:16 distance;
  distance = call_floor - position{cab};
  if (distance < 0) {{
    direction{cab} = 0;
    distance = -distance;
  }} else {{
    direction{cab} = 1;
  }}
  remaining{cab} = distance;
  SetTrue(BUSY{cab});
  Motor{cab} = 1;
}}

void Track{cab}() {{
  if (direction{cab} == 1) {{ position{cab} = position{cab} + 1; }}
  else {{ position{cab} = position{cab} - 1; }}
  remaining{cab} = remaining{cab} - 1;
  if (remaining{cab} == 0) {{ Raise(AT_FLOOR{cab}); }}
}}

void StopCab{cab}() {{
  Motor{cab} = 0;
  Door{cab} = 1;
}}

void HoldDoor{cab}() {{
  Door{cab} = 2;
}}

void DriveDoor{cab}() {{
  Door{cab} = 3;
}}

void Reopen{cab}() {{
  Door{cab} = 1;
  blocked_count = blocked_count + 1;
}}

void ParkCab{cab}() {{
  Door{cab} = 0;
  SetFalse(BUSY{cab});
}}
"""


ELEVATOR_ROUTINES = """
int:16 call_floor;
int:16 queue_depth;
int:16 blocked_count;
int:16 position0;
int:16 position1;
int:16 direction0;
int:16 direction1;
int:16 remaining0;
int:16 remaining1;

void InitBank() {
  call_floor = 0;
  queue_depth = 0;
  blocked_count = 0;
  position0 = 0;
  position1 = 0;
  SetFalse(BUSY0);
  SetFalse(BUSY1);
}

void QueueCall() {
  call_floor = CallFloor;
  queue_depth = queue_depth + 1;
  if (Test(BUSY0)) {
    if (!Test(BUSY1)) { Raise(DISPATCH1); }
  } else {
    Raise(DISPATCH0);
  }
}

void ClearCall() {
  queue_depth = queue_depth - 1;
}
""" + _cab_routines(0) + _cab_routines(1)


#: Shipped model-check properties (``repro check --workload elevator``).
#: BUSY{cab} must be clear whenever the cab is parked (Plan sets it, ParkCab
#: clears it), doors never open mid-travel, and every constrained event's
#: worst realizable cycle stays within its declared period.
ELEVATOR_PROPERTIES = """\
never BUSY0 in Parked0
never BUSY1 in Parked1
never DoorOpen0 while Moving0
never DoorOpen1 while Moving1
deadline HALL_CALL
deadline DOOR_BLOCKED0
deadline DOOR_BLOCKED1
"""
