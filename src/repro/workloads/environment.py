"""Closed-loop testbench: PSCP machine ⇄ stepper motors ⇄ central controller.

This is the dynamic counterpart of the static timing validation: the
compiled controller runs on the cycle-counting PSCP machine while the motor
physics of :mod:`repro.workloads.motors` generates the pulse events of
Table 2, and a :class:`~repro.pscp.trace.DeadlineMonitor` records whether
every constrained event was consumed within its period.

Protocol (reconstructed; the paper gives only the constraints):

* the central controller transfers a command byte-by-byte — one byte on the
  ``Buffer`` port per ``DATA_VALID``, every 1500 cycles; move parameters are
  placed in main memory by the controller (era-typical DMA), and
  ``END_DATA`` closes the transfer;
* ``PrepareMove`` raises the ``MOVEMENT`` condition; ``StartMove`` computes
  the profiles; entering the ``Moving`` composite starts the three motors;
* each motor's counter "issues a pulse on zero" — an ``X_PULSE``/
  ``Y_PULSE``/``PHI_PULSE`` event the controller must service within its
  deadline (``DeltaT`` reloads the counter);
* when a motor's steps are exhausted the environment raises ``X_STEPS`` &c.;
  when all three FINISH conditions hold it raises ``END_MOVE``;
* ``BUF_EMPTY`` tells the controller no commands remain.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.flow.build import BuiltSystem
from repro.pscp.machine import PscpMachine
from repro.pscp.ports import PortBus
from repro.pscp.trace import DeadlineMonitor, DeadlineReport
from repro.workloads import motors as motor_models
from repro.workloads.motors import Motor, MotorSpec, PHI_MOTOR, X_MOTOR, Y_MOTOR


@dataclass(frozen=True)
class MoveCommand:
    """One pickup-head move, in motor steps."""

    x_steps: int
    y_steps: int
    phi_steps: int
    opcode: int = 1


@dataclass
class ClosedLoopReport:
    """Outcome of a closed-loop run."""

    commands_completed: int
    commands_issued: int
    final_positions: Dict[str, int]
    deadline_reports: List[DeadlineReport]
    total_cycles: int
    configuration_cycles: int
    worst_latencies: Dict[str, Optional[int]]
    #: True when the run exhausted ``max_configuration_cycles`` before
    #: completing every command and draining the event queue
    truncated: bool = False
    #: restore-from-checkpoint recoveries performed during the run (only
    #: possible when ``run(..., restore_from_checkpoint=True)``)
    restarts: int = 0

    @property
    def all_deadlines_met(self) -> bool:
        return all(report.misses == 0 for report in self.deadline_reports)

    @property
    def all_moves_completed(self) -> bool:
        return (self.commands_completed == self.commands_issued
                and not self.truncated)


class SmdClosedLoop:
    """Drives a built SMD system against the motor physics."""

    COMMAND_PERIOD = motor_models.DATA_VALID_PERIOD_CYCLES
    COMMAND_BYTES = 4

    def __init__(self, system: BuiltSystem,
                 motor_specs: Optional[Dict[str, MotorSpec]] = None,
                 tracer=None, metrics=None, injector=None,
                 guard=None) -> None:
        self.system = system
        self.ports = PortBus()
        self.machine: PscpMachine = system.make_machine(port_bus=self.ports)
        self.monitor = DeadlineMonitor(system.chart)
        #: observability (optional): a repro.obs Tracer / MetricsRegistry
        if tracer is not None:
            self.machine.attach_tracer(tracer)
        #: robustness (optional): a FaultInjector / MachineGuard
        if injector is not None:
            self.machine.attach_injector(injector)
        if guard is not None:
            self.machine.attach_guard(guard)
        self.metrics = metrics
        specs = motor_specs or {"X": X_MOTOR, "Y": Y_MOTOR, "Phi": PHI_MOTOR}
        self.motors = {name: Motor(spec) for name, spec in specs.items()}
        self._pulse_event = {"X": "X_PULSE", "Y": "Y_PULSE",
                             "Phi": "PHI_PULSE"}
        self._steps_event = {"X": "X_STEPS", "Y": "Y_STEPS",
                             "Phi": "PHI_STEPS"}
        self._finish_condition = {"X": "XFINISH", "Y": "YFINISH",
                                  "Phi": "PHIFINISH"}
        #: (time, event) heap of scheduled external events
        self._queue: List[Tuple[int, int, str]] = []
        self._sequence = 0
        self._movement_seen = False
        self._move_started = False

    # -- event plumbing -------------------------------------------------------
    def schedule(self, time: int, event: str) -> None:
        heapq.heappush(self._queue, (time, self._sequence, event))
        self._sequence += 1

    def _due_events(self, now: int) -> Set[str]:
        due: Set[str] = set()
        while self._queue and self._queue[0][0] <= now:
            when, _, event = heapq.heappop(self._queue)
            self.monitor.arrival(event, when)
            due.add(event)
        return due

    # -- command transfer -----------------------------------------------------
    def _issue_command(self, command: MoveCommand, start_time: int) -> int:
        """Schedule the byte transfer for *command*; returns its end time."""
        time = start_time
        for index in range(self.COMMAND_BYTES):
            time += self.COMMAND_PERIOD
            self.schedule(time, "DATA_VALID")
        # parameters land in main memory (controller-side DMA)
        self._pending_params = command
        self._end_data_time = time + self.COMMAND_PERIOD // 4
        self.schedule(self._end_data_time, "END_DATA")
        return self._end_data_time

    def _apply_params(self, command: MoveCommand) -> None:
        target = self.system.compiled.allocator.locations["target"]
        accel = self.system.compiled.allocator.locations["accel"]
        vmax = self.system.compiled.allocator.locations["vmax"]
        executor = self.machine.executor
        width = self.system.arch.data_width
        # arrays are word groups; write per element
        def write_element(loc, index, value):
            words_per = loc.n_words // 3
            for w in range(words_per):
                executor._write_location(
                    loc.words[index * words_per + w],
                    (value >> (w * width)) & ((1 << width) - 1))
        for index, steps in enumerate(
                (command.x_steps, command.y_steps, command.phi_steps)):
            write_element(target, index, abs(steps))
            write_element(accel, index, 2)
            write_element(vmax, index, 50)
        buffer_port = self.system.compiled.maps.ports["Buffer"]
        self.ports.map_latch(buffer_port, command.opcode)

    # -- checkpoint/restore ---------------------------------------------------
    def _loop_checkpoint(self, pending, completed, previous_time):
        """Controller snapshot + deep copy of the plant and loop state.

        The machine snapshot excludes attachments on purpose: after a
        restore the injector's already-bitten faults stay consumed, so the
        fault that forced the escalation does not re-bite forever.
        """
        import copy

        return {
            "machine": self.machine.snapshot(include_attachments=False),
            "motors": copy.deepcopy(self.motors),
            "queue": list(self._queue),
            "sequence": self._sequence,
            "movement_seen": self._movement_seen,
            "move_started": self._move_started,
            "monitor": copy.deepcopy(self.monitor),
            "pending": list(pending),
            "completed": completed,
            "previous_time": previous_time,
        }

    def _restore_loop(self, checkpoint):
        """Roll controller, plant and loop state back to *checkpoint*."""
        self.machine.restore(checkpoint["machine"],
                             restore_attachments=False)
        if self.machine.guard is not None:
            self.machine.guard.reset_transient()
        import copy

        self.motors = copy.deepcopy(checkpoint["motors"])
        self._queue = list(checkpoint["queue"])
        self._sequence = checkpoint["sequence"]
        self._movement_seen = checkpoint["movement_seen"]
        self._move_started = checkpoint["move_started"]
        self.monitor = copy.deepcopy(checkpoint["monitor"])
        return (list(checkpoint["pending"]), checkpoint["completed"],
                checkpoint["previous_time"])

    # -- the run loop -----------------------------------------------------------
    def run(self, commands: Sequence[MoveCommand],
            max_configuration_cycles: int = 20000,
            restore_from_checkpoint: bool = False,
            checkpoint_every: int = 50,
            max_restarts: int = 3) -> ClosedLoopReport:
        from repro.fault.guard import MachineEscalation

        machine = self.machine
        pending = list(commands)
        completed = 0
        self.schedule(0, "POWER")
        if pending:
            self._apply_params(pending[0])
            self._issue_command(pending[0], machine.time)
        previous_time = -1
        ran_to_completion = False
        restarts = 0
        checkpoint = None
        last_checkpoint_cycle = machine.cycle_count
        if restore_from_checkpoint:
            checkpoint = self._loop_checkpoint(pending, completed,
                                               previous_time)

        for _ in range(max_configuration_cycles):
            now = machine.time
            events = self._due_events(now)
            # motor pulses since the previous configuration cycle
            for name, motor in self.motors.items():
                for when in motor.pulses_between(previous_time, now):
                    events.add(self._pulse_event[name])
                    self.monitor.arrival(self._pulse_event[name], when)
                if (motor.has_work and not motor.moving
                        and not machine.condition(
                            self._finish_condition[name])):
                    events.add(self._steps_event[name])
            # END_MOVE once every motor reported finished
            if (self._move_started
                    and all(machine.condition(c)
                            for c in self._finish_condition.values())):
                events.add("END_MOVE")
                self._move_started = False
                # under fault injection a spurious completion can arrive
                # after the command list drained; don't credit it
                if pending:
                    completed += 1
                    pending.pop(0)
                    if pending:
                        self._apply_params(pending[0])
                        self._issue_command(pending[0], machine.time)
                    else:
                        self.schedule(machine.time + self.COMMAND_PERIOD,
                                      "BUF_EMPTY")
            previous_time = now

            if (restore_from_checkpoint
                    and machine.cycle_count - last_checkpoint_cycle
                    >= checkpoint_every):
                checkpoint = self._loop_checkpoint(pending, completed,
                                                   previous_time)
                last_checkpoint_cycle = machine.cycle_count
            try:
                step = machine.step(events)
            except MachineEscalation:
                if not restore_from_checkpoint or restarts >= max_restarts:
                    raise
                restarts += 1
                pending, completed, previous_time = \
                    self._restore_loop(checkpoint)
                last_checkpoint_cycle = machine.cycle_count
                continue
            self.monitor.observe(step)

            # a move begins when the machine enters the Moving composite
            if machine.in_state("Moving") and not self._move_started:
                self._move_started = True
                command = None
                if completed < len(commands):
                    command = commands[completed]
                if command is not None:
                    self.motors["X"].command_move(command.x_steps, machine.time)
                    self.motors["Y"].command_move(command.y_steps, machine.time)
                    self.motors["Phi"].command_move(command.phi_steps,
                                                    machine.time)

            if completed == len(commands) and not self._queue:
                if all(not motor.moving for motor in self.motors.values()):
                    ran_to_completion = True
                    break

        machine.flush_trace()
        if self.metrics is not None:
            self._publish_metrics(completed, len(commands))
        return ClosedLoopReport(
            commands_completed=completed,
            commands_issued=len(commands),
            final_positions={name: motor.position_steps
                             for name, motor in self.motors.items()},
            deadline_reports=self.monitor.reports(),
            total_cycles=machine.time,
            configuration_cycles=machine.cycle_count,
            worst_latencies={report.event: report.worst_latency
                             for report in self.monitor.reports()},
            truncated=not ran_to_completion,
            restarts=restarts,
        )

    def _publish_metrics(self, completed: int, issued: int) -> None:
        metrics = self.metrics
        machine = self.machine
        self.monitor.publish(metrics)
        metrics.counter("machine.configuration_cycles").value = \
            machine.cycle_count
        metrics.counter("machine.reference_cycles",
                        "simulated reference-clock cycles").value = \
            machine.time
        metrics.counter("machine.instructions_retired").value = \
            machine.executor.instructions_executed
        bridge = machine.cond_cache_bridge
        metrics.counter("condcache.words_copied_in").value = \
            bridge.words_copied_in
        metrics.counter("condcache.words_copied_back").value = \
            bridge.words_copied_back
        metrics.counter("condcache.transfers",
                        "routine dispatches with cache copy-in").value = \
            bridge.transfers
        metrics.counter("workload.commands_completed").value = completed
        metrics.counter("workload.commands_issued").value = issued
        if machine.injector is not None:
            machine.injector.publish(metrics)
        if machine.guard is not None:
            machine.guard.publish(metrics)
