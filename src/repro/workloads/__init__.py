"""Workloads: the SMD pickup-head case study, motor physics, the closed-loop
testbench and synthetic chart generators.

Public API::

    from repro.workloads import smd_chart, SMD_ROUTINES, SmdClosedLoop
"""

from repro.workloads.environment import (
    ClosedLoopReport,
    MoveCommand,
    SmdClosedLoop,
)
from repro.workloads.generators import (
    parallel_servers,
    pipeline_chart,
    wide_decoder,
)
from repro.workloads.motors import (
    DATA_VALID_PERIOD_CYCLES,
    Motor,
    MotorSpec,
    PHI_DEADLINE_CYCLES,
    PHI_MOTOR,
    ProfileError,
    REFERENCE_CLOCK_HZ,
    SMD_MOTORS,
    TrapezoidalProfile,
    X_MOTOR,
    XY_DEADLINE_CYCLES,
    Y_MOTOR,
    Z_MOTOR,
    move_duration_cycles,
    steps_for_distance,
)
from repro.workloads.smd import (
    SMD_MUTUAL_EXCLUSIONS,
    SMD_PROPERTIES,
    SMD_ROUTINES,
    TABLE2_PAPER,
    TABLE3_PAPER,
    TABLE4_PAPER,
    smd_chart,
)

__all__ = [
    "ClosedLoopReport", "DATA_VALID_PERIOD_CYCLES", "MotorSpec",
    "Motor", "MoveCommand", "PHI_DEADLINE_CYCLES", "PHI_MOTOR",
    "ProfileError", "REFERENCE_CLOCK_HZ", "SMD_MOTORS",
    "SMD_MUTUAL_EXCLUSIONS", "SMD_PROPERTIES", "SMD_ROUTINES",
    "SmdClosedLoop",
    "TABLE2_PAPER", "TABLE3_PAPER", "TABLE4_PAPER", "TrapezoidalProfile",
    "X_MOTOR", "XY_DEADLINE_CYCLES", "Y_MOTOR", "Z_MOTOR",
    "move_duration_cycles", "parallel_servers", "pipeline_chart",
    "smd_chart", "steps_for_distance", "wide_decoder",
]
