"""Deterministic renderers for diagnostic lists: text, JSON, SARIF.

All three emitters are pure functions of the diagnostic list — no
timestamps, no absolute paths, no environment probes — so two runs over the
same sources produce byte-identical output (CI asserts this with ``cmp``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.diag import (
    CODES,
    Diagnostic,
    count_by_severity,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-lint"


def render_text(diagnostics: Sequence[Diagnostic],
                header: Optional[str] = None) -> str:
    """One line per diagnostic plus a severity-count summary line."""
    lines: List[str] = []
    if header:
        lines.append(header)
    lines.extend(d.format() for d in diagnostics)
    counts = count_by_severity(diagnostics)
    lines.append(f"{counts['error']} error(s), {counts['warning']} "
                 f"warning(s), {counts['note']} note(s)")
    return "\n".join(lines) + "\n"


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    document = {
        "version": 1,
        "tool": TOOL_NAME,
        "counts": count_by_severity(diagnostics),
        "diagnostics": [d.to_json() for d in diagnostics],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _sarif_rules(diagnostics: Sequence[Diagnostic]) -> List[Dict]:
    rules = []
    for code in sorted({d.code for d in diagnostics}):
        info = CODES.get(code)
        rule: Dict[str, object] = {"id": code}
        if info is not None:
            rule["shortDescription"] = {"text": info.title}
            rule["defaultConfiguration"] = {
                "level": info.severity.value}
        rules.append(rule)
    return rules


def _sarif_result(diagnostic: Diagnostic) -> Dict:
    result: Dict[str, object] = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.value,
        "message": {"text": diagnostic.message},
    }
    location = diagnostic.location
    if location.file is not None:
        physical: Dict[str, object] = {
            "artifactLocation": {"uri": location.file}}
        if location.line is not None:
            physical["region"] = {"startLine": location.line}
        result["locations"] = [{"physicalLocation": physical}]
    if location.obj:
        result["properties"] = {"object": location.obj}
    if diagnostic.hint:
        result.setdefault("properties", {})
        result["properties"]["hint"] = diagnostic.hint  # type: ignore[index]
    return result


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    """Static Analysis Results Interchange Format 2.1.0 (one run)."""
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "rules": _sarif_rules(diagnostics),
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [_sarif_result(d) for d in diagnostics],
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
