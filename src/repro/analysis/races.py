"""AND-region write-write race detection (PSC203).

Transitions whose sources sit in different regions of one AND state fire in
the *same* configuration cycle when both are enabled; if their actions write
overlapping storage, the post-step value depends on TEP scheduling order —
the classic statechart race.  This pass combines:

* structural orthogonality (:func:`repro.analysis.chart_lint.orthogonal`),
* joint satisfiability of the enabling conditions (a pair whose triggers
  contradict — e.g. ``X_PULSE`` vs ``not X_PULSE`` — cannot co-fire), and
* the context-sensitive effect summaries from
  :mod:`repro.analysis.effects`.

A pair is *not* reported when the architecture declares the two routines
mutually exclusive (``Arch.mutual_exclusions``): the hardware serializes
them, so the designer has already acknowledged and resolved the conflict.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.analysis.chart_lint import (
    _transition_loc,
    enable_products,
    jointly_satisfiable,
    orthogonal,
)
from repro.analysis.diag import Collector, Diagnostic
from repro.analysis.effects import Effects, write_conflicts
from repro.statechart.labels import action_routine_name
from repro.statechart.model import Chart


def _excluded(first_action: str, second_action: str,
              mutual_exclusions: FrozenSet[FrozenSet[str]]) -> bool:
    try:
        pair = frozenset({action_routine_name(first_action),
                          action_routine_name(second_action)})
    except Exception:
        return False
    return pair in mutual_exclusions


def and_region_races(chart: Chart,
                     effects: Dict[int, Effects],
                     mutual_exclusions: FrozenSet[FrozenSet[str]]
                     = frozenset(),
                     path: Optional[str] = None) -> List[Diagnostic]:
    """One PSC203 warning per racing transition pair."""
    out = Collector()
    transitions = [t for t in chart.transitions
                   if t.index in effects and t.action]
    products = {t.index: enable_products(t) for t in transitions}
    scopes = {t.index: chart.transition_scope(t) for t in transitions}

    for i, first in enumerate(transitions):
        for second in transitions[i + 1:]:
            if not orthogonal(chart, first.source, second.source):
                continue
            if (scopes[first.index] == scopes[second.index]
                    or chart.is_ancestor(scopes[first.index],
                                         scopes[second.index])
                    or chart.is_ancestor(scopes[second.index],
                                         scopes[first.index])):
                # ancestrally-related scopes conflict instead of co-firing;
                # the determinism pass owns that pair
                continue
            if not jointly_satisfiable(products[first.index],
                                       products[second.index]):
                continue
            clashes = write_conflicts(effects[first.index],
                                      effects[second.index])
            if not clashes:
                continue
            if _excluded(first.action, second.action, mutual_exclusions):
                continue
            out.emit(
                "PSC203",
                f"transitions {first.describe()} and {second.describe()} "
                "fire in the same cycle from parallel regions and both "
                f"write {', '.join(clashes)}; the result depends on TEP "
                "scheduling order",
                location=_transition_loc(chart, path, second),
                hint="serialize via Arch.mutual_exclusions, split the "
                     "storage per region, or make the triggers disjoint")
    return out.diagnostics
