"""Cross-layer static analysis: the ``repro lint`` diagnostics framework.

Eagerly exports only the dependency-free core (:mod:`repro.analysis.diag`,
:mod:`repro.analysis.emitters`); the analysis passes and the runner import
chart/action/flow machinery and are loaded lazily so that low-level modules
(e.g. :mod:`repro.statechart.validate`, :mod:`repro.action.check`) can
import the diagnostic core without cycles.
"""

from repro.analysis.diag import (
    CODES,
    Collector,
    DEFAULT_SUPPRESSED,
    Diagnostic,
    Severity,
    SourceLocation,
    count_by_severity,
    default_severity,
    finalize,
    known_code,
)
from repro.analysis.emitters import (
    RENDERERS,
    render_json,
    render_sarif,
    render_text,
)

_LAZY = {
    "wellformedness": "repro.analysis.chart_lint",
    "design_smells": "repro.analysis.chart_lint",
    "determinism": "repro.analysis.chart_lint",
    "quiescence": "repro.analysis.chart_lint",
    "transition_effects": "repro.analysis.effects",
    "Effects": "repro.analysis.effects",
    "and_region_races": "repro.analysis.races",
    "action_dataflow": "repro.analysis.dataflow",
    "budget_lint": "repro.analysis.budget",
    "sla_lint": "repro.analysis.sla_lint",
    "LintResult": "repro.analysis.runner",
    "lint_system": "repro.analysis.runner",
    "CheckResult": "repro.analysis.bmc",
    "check_system": "repro.analysis.bmc",
    "parse_properties": "repro.analysis.bmc",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "CODES",
    "Collector",
    "DEFAULT_SUPPRESSED",
    "Diagnostic",
    "RENDERERS",
    "Severity",
    "SourceLocation",
    "count_by_severity",
    "default_severity",
    "finalize",
    "known_code",
    "render_json",
    "render_sarif",
    "render_text",
] + sorted(_LAZY)
