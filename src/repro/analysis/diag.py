"""The diagnostic framework every static-analysis pass reports through.

A :class:`Diagnostic` is one finding: a stable code (``PSC203``), a severity,
a human message, an optional source location and an optional fix hint.  The
code is the contract — messages may be reworded, codes never change meaning —
so suppression lists, golden files and CI gates key on codes.

Severity is three-valued, mirroring SARIF levels: ``error`` findings reject
the design (the CLI exits non-zero), ``warning`` findings are real hazards a
designer must triage (e.g. an AND-region race the runtime serializes
deterministically), ``note`` findings are informational.

Codes are grouped by layer:

====== =====================================================================
 band   layer
====== =====================================================================
PSC1xx  chart well-formedness and design smells (statechart)
PSC2xx  determinism, AND-region races, quiescence (statechart semantics)
PSC3xx  action-language checks and dataflow (intermediate C)
PSC4xx  WCET / budget checks (ISA cost model, watchdog, scheduler)
PSC5xx  SLA / transition-address-table checks (synthesis)
PSC6xx  bounded model checking (declared properties, deadline proofs)
====== =====================================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding anchors: a file, a line, and/or a named object."""

    file: Optional[str] = None
    line: Optional[int] = None
    #: human-readable object description ("function 'GetByte'",
    #: "transition 12") for findings on synthetic or in-memory objects
    obj: str = ""

    def prefix(self) -> str:
        """The ``file:line: `` prefix of a text rendering (may be empty)."""
        if self.file and self.line:
            return f"{self.file}:{self.line}: "
        if self.file:
            return f"{self.file}: "
        return ""

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {}
        if self.file is not None:
            doc["file"] = self.file
        if self.line is not None:
            doc["line"] = self.line
        if self.obj:
            doc["object"] = self.obj
        return doc


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    hint: str = ""

    def format(self) -> str:
        text = (f"{self.location.prefix()}{self.severity.value} "
                f"{self.code}: {self.message}")
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def sort_key(self) -> Tuple:
        loc = self.location
        return (loc.file or "", loc.line or 0, self.code,
                self.message, loc.obj)

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        location = self.location.to_json()
        if location:
            doc["location"] = location
        if self.hint:
            doc["hint"] = self.hint
        return doc


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    title: str
    severity: Severity
    description: str = ""


#: Every stable diagnostic code, its default severity and one-line title.
#: docs/ANALYSIS.md is generated from the same table of facts — keep both
#: in sync when adding a code.
CODES: Dict[str, CodeInfo] = {
    # -- PSC1xx: chart well-formedness and design smells -------------------
    "PSC100": CodeInfo("chart parse error", Severity.ERROR),
    "PSC101": CodeInfo("OR-state default is not a child", Severity.ERROR),
    "PSC102": CodeInfo("AND-state needs at least two regions",
                       Severity.ERROR),
    "PSC103": CodeInfo("basic state must not contain children",
                       Severity.ERROR),
    "PSC104": CodeInfo("ref state refers to no chart", Severity.ERROR),
    "PSC105": CodeInfo("ref state must not contain children",
                       Severity.ERROR),
    "PSC106": CodeInfo("undeclared event/condition in a label",
                       Severity.ERROR),
    "PSC107": CodeInfo("transition targets the root", Severity.ERROR),
    "PSC108": CodeInfo("event period must be positive", Severity.ERROR),
    "PSC109": CodeInfo("event port is not declared", Severity.ERROR),
    "PSC110": CodeInfo("condition port is not declared", Severity.ERROR),
    "PSC150": CodeInfo("structurally unreachable state", Severity.WARNING),
    "PSC151": CodeInfo("event triggers no transition", Severity.WARNING),
    "PSC152": CodeInfo("condition guards no transition", Severity.WARNING),
    # -- PSC2xx: determinism, races, quiescence ----------------------------
    "PSC201": CodeInfo("transition shadowed by a higher-priority one",
                       Severity.ERROR),
    "PSC202": CodeInfo("overlapping enables resolved only by priority",
                       Severity.NOTE),
    "PSC203": CodeInfo("AND-region write-write race", Severity.WARNING),
    "PSC204": CodeInfo("raised-event cycle may prevent quiescence",
                       Severity.WARNING),
    "PSC205": CodeInfo("transition shadowed by the union of higher-priority "
                       "ones", Severity.ERROR),
    # -- PSC3xx: action language -------------------------------------------
    "PSC301": CodeInfo("action parse error", Severity.ERROR),
    "PSC302": CodeInfo("action semantic error", Severity.ERROR),
    "PSC303": CodeInfo("recursion is not permitted", Severity.ERROR),
    "PSC310": CodeInfo("use before initialization", Severity.ERROR),
    "PSC311": CodeInfo("dead store", Severity.WARNING),
    "PSC312": CodeInfo("constant condition; branch is dead",
                       Severity.WARNING),
    "PSC313": CodeInfo("width-truncating assignment", Severity.WARNING),
    # -- PSC4xx: WCET / budgets --------------------------------------------
    "PSC401": CodeInfo("@wcet override below the derived cost",
                       Severity.ERROR),
    "PSC402": CodeInfo("event cycle exceeds the arrival period",
                       Severity.ERROR),
    "PSC403": CodeInfo("no event declares a period", Severity.NOTE),
    # -- PSC5xx: SLA / TAT -------------------------------------------------
    "PSC501": CodeInfo("duplicate transition-address-table entry",
                       Severity.ERROR),
    "PSC502": CodeInfo("SLA encoding collision", Severity.ERROR),
    # -- PSC6xx: bounded model checking ------------------------------------
    "PSC600": CodeInfo("property does not parse", Severity.ERROR),
    "PSC601": CodeInfo("property names an unknown state/event/condition",
                       Severity.ERROR),
    "PSC602": CodeInfo("safety property violated (counterexample replayed)",
                       Severity.ERROR),
    "PSC603": CodeInfo("safety property proved within the explored space",
                       Severity.NOTE),
    "PSC604": CodeInfo("bound exhausted before a verdict", Severity.WARNING),
    "PSC605": CodeInfo("abstract counterexample did not replay",
                       Severity.WARNING),
    "PSC610": CodeInfo("deadline proven: worst realizable cycle within the "
                       "period", Severity.NOTE),
    "PSC611": CodeInfo("deadline violation proven (witness replayed)",
                       Severity.ERROR),
    "PSC612": CodeInfo("heuristic deadline violation refuted within the "
                       "bound", Severity.NOTE),
}

#: Codes that are off unless explicitly enabled.  PSC202 fires on every
#: legitimate use of declaration-order priority (the STATEMATE semantics the
#: interpreter implements), so it is opt-in documentation, not a default lint.
DEFAULT_SUPPRESSED = frozenset({"PSC202"})


def known_code(code: str) -> bool:
    return code in CODES


def default_severity(code: str) -> Severity:
    info = CODES.get(code)
    return info.severity if info is not None else Severity.WARNING


class Collector:
    """Accumulates diagnostics for one pass; severity defaults from CODES."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def emit(self, code: str, message: str, *,
             location: Optional[SourceLocation] = None,
             hint: str = "",
             severity: Optional[Severity] = None) -> Diagnostic:
        diagnostic = Diagnostic(
            code=code,
            severity=severity or default_severity(code),
            message=message,
            location=location or SourceLocation(),
            hint=hint)
        self.diagnostics.append(diagnostic)
        return diagnostic


def finalize(diagnostics: Iterable[Diagnostic],
             suppress: Sequence[str] = (),
             enable: Sequence[str] = ()) -> Tuple[Diagnostic, ...]:
    """Apply per-code suppression and return a deterministically sorted tuple.

    *suppress* silences codes on top of :data:`DEFAULT_SUPPRESSED`;
    *enable* re-activates codes (it wins over both suppression sources).
    """
    suppressed = (DEFAULT_SUPPRESSED | frozenset(suppress)) - frozenset(enable)
    kept = [d for d in diagnostics if d.code not in suppressed]
    return tuple(sorted(kept, key=Diagnostic.sort_key))


def count_by_severity(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0, "note": 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts
