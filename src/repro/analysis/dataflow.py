"""Intraprocedural dataflow lint for action routines (PSC310..PSC313).

Runs on a *checked* program, so every expression node carries its inferred
type; the analyses are deliberately conservative — each warning is a claim
that holds on every execution path the analysis can see:

* **PSC310 use-before-init** — definite-assignment analysis: a local read
  on some path before any assignment.  Branches of an ``if`` contribute the
  *intersection* of their assignments; a ``while`` body contributes nothing
  to the code after the loop (it may run zero times).
* **PSC311 dead store** — a store whose value can never be read: either
  overwritten by a later store with no intervening read (straight-line
  only; any branch/loop clears the tracking) or still pending when the
  function returns.  Globals, ports and conditions are never flagged —
  their values outlive the call.
* **PSC312 constant condition** — an ``if`` whose condition folds to a
  compile-time constant (one branch is dead), or a ``while`` whose
  condition folds to false (the body is dead).
* **PSC313 width truncation** — assigning a wider scalar value into a
  narrower target (``int:16`` into ``int:8``): the store silently drops
  high bits on the PSCP datapath.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.action.ast import (
    Assign,
    Binary,
    BinOp,
    BoolLiteral,
    BoolType,
    Call,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    If,
    Index,
    IntLiteral,
    IntType,
    NameRef,
    Return,
    Stmt,
    Unary,
    UnOp,
    VarDecl,
    While,
    type_width,
    walk_expr,
)
from repro.action.check import CheckedProgram
from repro.analysis.diag import Collector, Diagnostic, SourceLocation


def action_dataflow(checked: CheckedProgram,
                    path: Optional[str] = None,
                    line_offset: int = 0) -> List[Diagnostic]:
    """All dataflow diagnostics for every function in *checked*."""
    out = Collector()
    folder = _ConstFolder(checked)
    for function in checked.program.functions:
        _FunctionDataflow(out, checked, function, folder,
                          path, line_offset).run()
    return out.diagnostics


class _ConstFolder:
    """Best-effort constant folding over checked expressions."""

    def __init__(self, checked: CheckedProgram) -> None:
        self.enum_values: Dict[str, int] = {}
        for name, typ in checked.global_types.items():
            if isinstance(typ, EnumType) and name in typ.members:
                self.enum_values[name] = typ.value_of(name)

    def fold(self, expr: Expr) -> Optional[int]:
        """Fold to an int (bools as 0/1), or None when not constant."""
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, BoolLiteral):
            return int(expr.value)
        if isinstance(expr, NameRef):
            return self.enum_values.get(expr.name)
        if isinstance(expr, Unary):
            value = self.fold(expr.operand)
            if value is None:
                return None
            if expr.op is UnOp.NEG:
                return -value
            if expr.op is UnOp.BNOT:
                return ~value
            if expr.op is UnOp.LNOT:
                return int(not value)
        if isinstance(expr, Binary):
            left = self.fold(expr.left)
            # short-circuit forms can be decided from one side
            if expr.op is BinOp.LAND and left == 0:
                return 0
            if expr.op is BinOp.LOR and left not in (None, 0):
                return 1
            right = self.fold(expr.right)
            if left is None or right is None:
                return None
            try:
                return _APPLY[expr.op](left, right)
            except (KeyError, ZeroDivisionError):
                return None
        return None


_APPLY = {
    BinOp.ADD: lambda a, b: a + b,
    BinOp.SUB: lambda a, b: a - b,
    BinOp.MUL: lambda a, b: a * b,
    BinOp.DIV: lambda a, b: int(a / b),
    BinOp.MOD: lambda a, b: a - int(a / b) * b,
    BinOp.AND: lambda a, b: a & b,
    BinOp.OR: lambda a, b: a | b,
    BinOp.XOR: lambda a, b: a ^ b,
    BinOp.SHL: lambda a, b: a << b,
    BinOp.SHR: lambda a, b: a >> b,
    BinOp.EQ: lambda a, b: int(a == b),
    BinOp.NE: lambda a, b: int(a != b),
    BinOp.LT: lambda a, b: int(a < b),
    BinOp.LE: lambda a, b: int(a <= b),
    BinOp.GT: lambda a, b: int(a > b),
    BinOp.GE: lambda a, b: int(a >= b),
    BinOp.LAND: lambda a, b: int(bool(a) and bool(b)),
    BinOp.LOR: lambda a, b: int(bool(a) or bool(b)),
}


def _is_scalar(typ) -> bool:
    return isinstance(typ, (IntType, BoolType, EnumType))


class _FunctionDataflow:
    def __init__(self, out: Collector, checked: CheckedProgram,
                 function: Function, folder: _ConstFolder,
                 path: Optional[str], line_offset: int) -> None:
        self.out = out
        self.checked = checked
        self.function = function
        self.folder = folder
        self.path = path
        self.line_offset = line_offset
        self.locals: Set[str] = set()
        #: local name -> (line of the store awaiting a read)
        self.pending_stores: Dict[str, Optional[int]] = {}
        self.reported_uninit: Set[str] = set()

    # -- plumbing ----------------------------------------------------------
    def location(self, line: Optional[int]) -> SourceLocation:
        if line is not None and self.line_offset and line > self.line_offset:
            line = line - self.line_offset
        return SourceLocation(file=self.path, line=line,
                              obj=f"function {self.function.name!r}")

    def run(self) -> None:
        assigned = {p.name for p in self.function.params}
        self.walk(self.function.body, assigned)
        for name, line in sorted(self.pending_stores.items(),
                                 key=lambda item: (item[1] or 0, item[0])):
            self.out.emit(
                "PSC311",
                f"value stored to local {name!r} is never read",
                location=self.location(line),
                hint="delete the store or use the value")

    # -- definite assignment + linear dead-store scan ----------------------
    def walk(self, stmts: List[Stmt], assigned: Set[str]) -> Set[str]:
        """Process a block; returns the definitely-assigned set after it."""
        for stmt in stmts:
            assigned = self.stmt(stmt, assigned)
        return assigned

    def stmt(self, stmt: Stmt, assigned: Set[str]) -> Set[str]:
        if isinstance(stmt, VarDecl):
            self.locals.add(stmt.name)
            if stmt.init is not None:
                self.check_reads(stmt.init, assigned, stmt.line)
                self.check_truncation(stmt.typ, stmt.init, stmt.line,
                                      f"initializer of {stmt.name!r}")
                self.note_store(stmt.name, stmt.line)
                return assigned | {stmt.name}
            return assigned
        if isinstance(stmt, Assign):
            if stmt.op is not None:
                # compound assignment reads the target first
                self.check_reads(stmt.target, assigned, stmt.line)
            self.check_reads(stmt.value, assigned, stmt.line)
            target = stmt.target
            if isinstance(target, (Index, FieldAccess)):
                # element store: index expressions are reads, but the base
                # object itself is being (partially) assigned, not read
                base = target
                while isinstance(base, (Index, FieldAccess)):
                    if isinstance(base, Index):
                        self.check_reads(base.index, assigned, stmt.line)
                    base = base.base
                if isinstance(base, NameRef):
                    self.pending_stores.pop(base.name, None)
                    return assigned | {base.name}
                self.check_reads(base, assigned, stmt.line)
                return assigned
            if isinstance(target, NameRef):
                if stmt.op is None and _is_scalar(getattr(target, "typ",
                                                          None)):
                    self.check_truncation(target.typ, stmt.value, stmt.line,
                                          f"assignment to {target.name!r}")
                self.note_store(target.name, stmt.line)
                return assigned | {target.name}
            return assigned
        if isinstance(stmt, If):
            self.check_reads(stmt.cond, assigned, stmt.line)
            value = self.folder.fold(stmt.cond)
            if value is not None:
                dead = "else" if value else "then"
                self.out.emit(
                    "PSC312",
                    f"condition {stmt.cond} is always "
                    f"{'true' if value else 'false'}; the {dead} branch "
                    "is dead",
                    location=self.location(stmt.line),
                    hint="remove the branch or make the condition depend "
                         "on runtime state")
            self.flush_stores()
            after_then = self.walk(stmt.then_body, set(assigned))
            self.flush_stores()
            after_else = self.walk(stmt.else_body, set(assigned))
            self.flush_stores()
            return after_then & after_else
        if isinstance(stmt, While):
            self.check_reads(stmt.cond, assigned, stmt.line)
            value = self.folder.fold(stmt.cond)
            if value == 0:
                self.out.emit(
                    "PSC312",
                    f"loop condition {stmt.cond} is always false; the "
                    "body is dead",
                    location=self.location(stmt.line),
                    hint="remove the loop or fix the condition")
            self.flush_stores()
            # the body may execute zero times: analyze it against a copy
            # of the assigned set, then discard its assignments
            body_assigned = self.walk(stmt.body, set(assigned))
            self.check_reads(stmt.cond, body_assigned, stmt.line)
            self.flush_stores()
            return assigned
        if isinstance(stmt, Return):
            if stmt.value is not None:
                self.check_reads(stmt.value, assigned, stmt.line)
            self.flush_stores()
            return assigned
        if isinstance(stmt, ExprStmt):
            self.check_reads(stmt.expr, assigned, stmt.line)
            return assigned
        return assigned

    # -- reads -------------------------------------------------------------
    def check_reads(self, expr: Expr, assigned: Set[str],
                    line: Optional[int]) -> None:
        for node in walk_expr(expr):
            if isinstance(node, NameRef):
                name = node.name
                self.pending_stores.pop(name, None)
                if (name in self.locals and name not in assigned
                        and name not in self.reported_uninit):
                    self.reported_uninit.add(name)
                    self.out.emit(
                        "PSC310",
                        f"local {name!r} may be read before it is "
                        "assigned",
                        location=self.location(line),
                        hint="initialize it at its declaration")

    # -- dead stores -------------------------------------------------------
    def note_store(self, name: str, line: Optional[int]) -> None:
        if name not in self.locals:
            return  # globals/ports outlive the call; never dead
        previous = self.pending_stores.get(name, _ABSENT)
        if previous is not _ABSENT:
            self.out.emit(
                "PSC311",
                f"value stored to local {name!r} is overwritten before "
                "it is read",
                location=self.location(previous),
                hint="delete the first store")
        self.pending_stores[name] = line

    def flush_stores(self) -> None:
        """Forget pending stores at a control-flow boundary — the scan is
        straight-line only, so branches/loops/returns end the region."""
        self.pending_stores.clear()

    def check_truncation(self, target_typ, value: Expr,
                         line: Optional[int], what: str) -> None:
        value_typ = getattr(value, "typ", None)
        if not (_is_scalar(target_typ) and _is_scalar(value_typ)):
            return
        if isinstance(value, (IntLiteral, BoolLiteral)):
            return  # literals get a minimal-width type already
        if type_width(value_typ) > type_width(target_typ):
            self.out.emit(
                "PSC313",
                f"{what}: {value_typ} value truncated to {target_typ}",
                location=self.location(line),
                hint="widen the target or mask the value explicitly")


_ABSENT = object()
