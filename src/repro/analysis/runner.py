"""The lint orchestrator: runs every analysis pass in dependency order.

Pass pipeline (each stage only runs when its prerequisites hold):

1. chart well-formedness + design smells — structural errors stop here
   (later passes assume a well-formed chart);
2. determinism (shadowed transitions / priority overlaps);
3. action parse + semantic check (diagnostics, never exceptions) —
   semantic errors stop here (dataflow and effects need typed ASTs);
4. action dataflow (use-before-init, dead stores, constants, truncation);
5. effect analysis -> AND-region races + quiescence;
6. full system build -> WCET/budget + SLA/TAT checks.

Races run on the *original* chart (before routine specialization) so
constant-argument context sensitivity applies; the budget pass runs on the
*built* chart so costs reflect exactly what the scheduler executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.diag import (
    Diagnostic,
    Severity,
    SourceLocation,
    count_by_severity,
    finalize,
)
from repro.statechart.model import Chart


@dataclass(frozen=True)
class LintResult:
    """All surviving diagnostics of one lint run, sorted and counted."""

    diagnostics: Tuple[Diagnostic, ...]

    @property
    def errors(self) -> int:
        return count_by_severity(self.diagnostics)["error"]

    @property
    def warnings(self) -> int:
        return count_by_severity(self.diagnostics)["warning"]

    @property
    def has_errors(self) -> bool:
        return self.errors > 0


def _preamble_offset() -> int:
    from repro.action.stdlib import PREAMBLE

    return PREAMBLE.count("\n") + 1


def _shift(diagnostic: Diagnostic, offset: int) -> Diagnostic:
    location = diagnostic.location
    if location.line is None or location.line <= offset:
        return diagnostic
    import dataclasses

    return dataclasses.replace(
        diagnostic,
        location=dataclasses.replace(location, line=location.line - offset))


def lint_system(chart: Chart,
                source: str,
                arch,
                *,
                specialize: bool = False,
                storage_map: Optional[Dict] = None,
                system=None,
                chart_path: Optional[str] = None,
                source_path: Optional[str] = None,
                suppress: Iterable[str] = (),
                enable: Iterable[str] = ()) -> LintResult:
    """Run every applicable pass over one (chart, routines, arch) triple.

    *system* may pass in an already-built :class:`BuiltSystem` to avoid
    rebuilding; otherwise the runner builds one itself once the frontend
    passes are clean.
    """
    from repro.action.check import Checker, Externals
    from repro.action.parser import ActionParseError, parse_with_preamble
    from repro.analysis.chart_lint import (
        design_smells,
        determinism,
        quiescence,
        wellformedness,
    )

    def done(diagnostics) -> LintResult:
        return LintResult(finalize(diagnostics, suppress=suppress,
                                   enable=enable))

    diagnostics = list(wellformedness(chart, chart_path))
    diagnostics += design_smells(chart, chart_path)
    if any(d.severity is Severity.ERROR for d in diagnostics):
        return done(diagnostics)  # structural errors: stop before analysis

    diagnostics += determinism(chart, chart_path)

    offset = _preamble_offset()
    try:
        program = parse_with_preamble(source)
    except ActionParseError as exc:
        line = exc.line - offset if exc.line > offset else exc.line
        diagnostics.append(Diagnostic(
            code="PSC301", severity=Severity.ERROR,
            message=f"action program does not parse: {exc}",
            location=SourceLocation(file=source_path, line=line)))
        return done(diagnostics)

    checker = Checker(program, Externals.from_chart(chart),
                      source_path=source_path)
    checked = checker.analyze()
    diagnostics += [_shift(d, offset) for d in checker.diagnostics]
    if checker.problems:
        return done(diagnostics)  # untyped ASTs: dataflow would misfire

    from repro.analysis.dataflow import action_dataflow
    from repro.analysis.effects import transition_effects
    from repro.analysis.races import and_region_races

    diagnostics += action_dataflow(checked, source_path, line_offset=offset)

    effects = transition_effects(chart, checked)
    mutual_exclusions = getattr(arch, "mutual_exclusions", frozenset())
    diagnostics += and_region_races(chart, effects, mutual_exclusions,
                                    chart_path)
    raised_by = {index: summary.raises
                 for index, summary in effects.items()}
    diagnostics += quiescence(chart, raised_by, chart_path)

    if system is None:
        from repro.flow.build import build_system

        system = build_system(chart, source, arch,
                              storage_map=storage_map,
                              specialize=specialize)

    from repro.analysis.budget import budget_lint
    from repro.analysis.sla_lint import sla_lint

    diagnostics += budget_lint(system, original_chart=chart,
                               path=chart_path)
    diagnostics += sla_lint(chart, path=chart_path)
    return done(diagnostics)
