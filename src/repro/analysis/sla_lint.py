"""SLA / Transition Address Table lint (PSC501, PSC502).

Two backend invariants worth checking *before* synthesis:

* **PSC501** — two TAT entries with the same (source, target, trigger,
  guard, action) are the same transition listed twice; the SLA synthesizes
  identical AND-plane terms and the duplicate silently wastes product
  terms and a TAT slot (and under priority semantics the second can never
  contribute).
* **PSC502** — the state encoding must *distinguish* states that the chart
  declares mutually exclusive (children of one OR along any path).  If two
  such states' field constraints are jointly satisfiable, one CR value
  activates both and the SLA may fire transitions from a state the machine
  is not in.  The shipped exclusivity-set encoder cannot produce this by
  construction; the check guards alternative/hand-written encodings (and
  documents the invariant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.chart_lint import _transition_loc, co_occupiable
from repro.analysis.diag import Collector, Diagnostic, SourceLocation
from repro.sla.encode import StateEncoding, binary_encoding
from repro.statechart.model import Chart, Transition


def _tat_key(transition: Transition) -> Tuple[str, str, str, str, str]:
    return (transition.source, transition.target,
            str(transition.trigger) if transition.trigger is not None else "",
            str(transition.guard) if transition.guard is not None else "",
            transition.action or "")


def _jointly_satisfiable(a, b) -> bool:
    """Can one state-field value match both constraint tuples?"""
    bits: Dict[int, int] = {}
    for constraint in (*a, *b):
        for bit in range(constraint.width):
            value = (constraint.value >> bit) & 1
            position = constraint.offset + bit
            if bits.setdefault(position, value) != value:
                return False
    return True


def sla_lint(chart: Chart,
             encoding: Optional[StateEncoding] = None,
             path: Optional[str] = None) -> List[Diagnostic]:
    """TAT duplicate and encoding-collision diagnostics."""
    out = Collector()

    groups: Dict[Tuple[str, str, str, str, str], List[Transition]] = {}
    for transition in chart.transitions:
        groups.setdefault(_tat_key(transition), []).append(transition)
    for key in sorted(groups):
        entries = groups[key]
        if len(entries) < 2:
            continue
        first, *rest = entries
        for duplicate in rest:
            out.emit(
                "PSC501",
                f"duplicate TAT entry: transition {duplicate.describe()} "
                f"(index {duplicate.index}) repeats index {first.index}; "
                "the duplicate wastes an SLA product term and can never "
                "contribute under priority",
                location=_transition_loc(chart, path, duplicate),
                hint="delete one of the identical transitions")

    if encoding is None:
        encoding = binary_encoding(chart)
    names = sorted(encoding.constraints)
    for i, first in enumerate(names):
        if first not in chart.states:
            continue
        for second in names[i + 1:]:
            if second not in chart.states:
                continue
            if co_occupiable(chart, first, second):
                continue  # allowed to share/overlap encodings
            if _jointly_satisfiable(encoding.constraints[first],
                                    encoding.constraints[second]):
                out.emit(
                    "PSC502",
                    f"state encoding collision: mutually exclusive states "
                    f"{first!r} and {second!r} have jointly satisfiable "
                    "field constraints, so one CR value activates both",
                    location=SourceLocation(file=path, line=None,
                                            obj=f"state {first!r}"),
                    hint="use the exclusivity-set encoder or assign the "
                         "states distinct selector values")
    return out.diagnostics
