"""WCET / cycle-budget lint (PSC401..PSC403).

Relates the three timing artifacts the flow already computes:

* the per-transition static cost from the ISA cost model
  (:func:`repro.pscp.machine.stub_wcet` + scheduler dispatch overhead),
* explicit ``wcet N`` overrides on transitions — the paper's "explicit
  timing constraints" escape hatch for un-analyzable routines, and
* event arrival periods, which the timing validator turns into cycle
  budgets.

PSC401 catches an override that *understates* the analyzed cost: the
validator would then certify budgets the hardware cannot meet, so the
watchdog fires at runtime with no static warning.  PSC402 surfaces the
validator's own verdict (a chart that can never meet an event period is
rejected statically).  PSC403 notes when no event carries a period at all
— nothing constrains the design, which is usually an oversight in a
reactive system.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.analysis.diag import Collector, Diagnostic, SourceLocation
from repro.flow.build import BuiltSystem
from repro.pscp.machine import stub_wcet
from repro.statechart.model import Chart


def budget_lint(system: BuiltSystem,
                original_chart: Optional[Chart] = None,
                path: Optional[str] = None) -> List[Diagnostic]:
    """Budget diagnostics for a fully built system.

    *original_chart* (pre-specialization) supplies source lines for
    transitions; the analysis itself runs on ``system.chart`` so costs
    reflect exactly what the scheduler will execute.
    """
    out = Collector()
    chart = system.chart
    lines = original_chart or chart

    for transition in chart.transitions:
        if transition.wcet_override is None:
            continue
        derived = stub_wcet(
            dataclasses.replace(transition, wcet_override=None),
            system.compiled, system.param_names)
        if transition.wcet_override < derived:
            line = None
            if transition.index < len(lines.transitions):
                line = lines.transitions[transition.index].line
            out.emit(
                "PSC401",
                f"transition {transition.describe()}: declared wcet "
                f"{transition.wcet_override} is below the analyzed cost "
                f"{derived} cycles; the timing validator would certify "
                "budgets the hardware cannot meet",
                location=SourceLocation(
                    file=path, line=line,
                    obj=f"transition {transition.index}"),
                hint=f"raise the override to at least {derived} or drop "
                     "it to use the analyzed cost")

    for violation in system.validator.validate():
        out.emit(
            "PSC402",
            f"timing violation: {violation.describe()}",
            location=SourceLocation(
                file=path, line=None,
                obj=f"event {violation.cycle.event!r}"),
            hint="shorten the routines on the cycle, add TEPs, or relax "
                 "the event period")

    if not chart.constrained_events():
        out.emit(
            "PSC403",
            "no event declares an arrival period; the timing validator "
            "has nothing to check",
            location=SourceLocation(file=path, line=None,
                                    obj=f"chart {chart.name!r}"),
            hint="add 'period N' to the external events that drive the "
                 "chart")
    return out.diagnostics
