"""Property verdicts over the explored space, as PSC6xx diagnostics.

Verdict semantics (docs/CHECKING.md):

* **proved** — the property holds on every node of a *completely* explored
  space.  The explored space over-approximates the concrete machine (may
  effects fork both ways), so a proof here is a proof for the machine.
* **violated** — an abstract counterexample was found *and* its event trace
  replayed on the real :class:`~repro.pscp.machine.PscpMachine` to the
  violating configuration.  PSC602 (safety) / PSC611 (deadline), with the
  witness + forensics artifacts written when a directory is given.
* **unconfirmed** — the abstraction found a violation but the machine's
  concrete routine data refused to follow the path: PSC605, honest warning.
* **bound exhausted** — neither, because exploration was truncated (depth,
  state budget, input-alphabet or fork caps): PSC604, never silently clean.

Deadline properties upgrade the timing validator's PSC402 story: each
heuristic event cycle is *realized* against the explored graph (the exact
transition sequence must fire, in order, with only quiescent cycles in
between).  An over-budget cycle that realizes is a proven violation with a
replayable witness; one that cannot realize in a complete space is refuted
(PSC612) — the heuristic was pessimistic — and the longest realizable cycle
becomes the proven worst case (PSC610).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.bmc.explorer import (
    BmcNode,
    Edge,
    ExploredSpace,
    Explorer,
    abstract_actions,
)
from repro.analysis.bmc.props import (
    AlwaysReach,
    Deadline,
    NeverIn,
    NeverWhile,
    ParsedProperties,
    Property,
    parse_properties,
)
from repro.analysis.bmc.witness import (
    Witness,
    replay_witness,
    write_witness,
)
from repro.analysis.diag import (
    Collector,
    Diagnostic,
    SourceLocation,
    count_by_severity,
    finalize,
)
from repro.statechart.model import Chart

PROVED = "proved"
VIOLATED = "violated"
UNCONFIRMED = "unconfirmed"
BOUND_EXHAUSTED = "bound-exhausted"


@dataclass
class PropertyVerdict:
    """One property's outcome."""

    prop: Property
    status: str
    detail: str = ""
    witness: Optional[Witness] = None
    witness_files: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CheckResult:
    """Everything one ``repro check`` run decided."""

    diagnostics: Tuple[Diagnostic, ...]
    verdicts: Tuple[PropertyVerdict, ...]
    nodes: int
    complete: bool
    truncation: Optional[str] = None
    #: the underlying exploration, for callers cross-checking coverage
    #: (e.g. the fuzz campaign's oracle-agreement stage); not serialized
    space: Optional[ExploredSpace] = None

    @property
    def violated(self) -> bool:
        return any(v.status == VIOLATED for v in self.verdicts)

    @property
    def undecided(self) -> bool:
        return any(v.status in (BOUND_EXHAUSTED, UNCONFIRMED)
                   for v in self.verdicts)

    @property
    def errors(self) -> int:
        return count_by_severity(self.diagnostics)["error"]


# ---------------------------------------------------------------------------
# per-form checks
# ---------------------------------------------------------------------------

def _bound_detail(space: ExploredSpace) -> str:
    return space.truncation or "bound reached"


def _check_never_while(prop: NeverWhile, space: ExploredSpace
                       ) -> PropertyVerdict:
    for node in space.nodes:
        config = node[0]
        if prop.state_a in config and prop.state_b in config:
            trace = tuple(space.trace_to(node))
            witness = Witness(
                property_text=prop.text, kind="never-while", trace=trace,
                expect={"states": [prop.state_a, prop.state_b]})
            return PropertyVerdict(prop, VIOLATED,
                                   f"co-occupied after {len(trace)} "
                                   "cycle(s)", witness)
    if space.complete:
        return PropertyVerdict(
            prop, PROVED,
            f"no reachable configuration holds {prop.state_a!r} and "
            f"{prop.state_b!r} together ({len(space.nodes)} states)")
    return PropertyVerdict(prop, BOUND_EXHAUSTED, _bound_detail(space))


def _check_never_in(prop: NeverIn, space: ExploredSpace) -> PropertyVerdict:
    assert prop.expr is not None
    for node in space.nodes:
        config, conds, _ = node
        if prop.state in config and prop.expr.evaluate(conds):
            trace = tuple(space.trace_to(node))
            witness = Witness(
                property_text=prop.text, kind="never-in", trace=trace,
                expect={"state": prop.state, "expr": prop.expr_text})
            return PropertyVerdict(prop, VIOLATED,
                                   f"holds after {len(trace)} cycle(s)",
                                   witness)
    if space.complete:
        return PropertyVerdict(
            prop, PROVED,
            f"{prop.expr_text!r} is false in every reachable "
            f"{prop.state!r} configuration ({len(space.nodes)} states)")
    return PropertyVerdict(prop, BOUND_EXHAUSTED, _bound_detail(space))


def _check_always_reach(prop: AlwaysReach, space: ExploredSpace
                        ) -> PropertyVerdict:
    """Violation: a run of *cycles* steps after an arrival of the event
    that never enters the target state (the arrival step is cycle 1)."""
    memo: Dict[Tuple[BmcNode, int], object] = {}
    UNKNOWN = "unknown"

    def avoid(node: BmcNode, remaining: int):
        """A list of inputs avoiding the state, UNKNOWN, or None."""
        if prop.state in node[0]:
            return None
        if remaining == 0:
            return []
        key = (node, remaining)
        if key in memo:
            return memo[key]
        memo[key] = None  # cut cycles: a revisit within the same budget
        if node not in space.expanded:
            memo[key] = UNKNOWN
            return UNKNOWN
        saw_unknown = False
        for edge in space.edges[node]:
            sub = avoid(edge.target, remaining - 1)
            if sub is UNKNOWN:
                saw_unknown = True
            elif sub is not None:
                result = [edge.inputs] + sub
                memo[key] = result
                return result
        memo[key] = UNKNOWN if saw_unknown else None
        return memo[key]

    saw_unknown = False
    for node in space.nodes:
        if node not in space.expanded:
            saw_unknown = True
            continue
        if prop.event in space.decisions.get(node, ()):
            arrivals = [edge for edge in space.edges[node]
                        if prop.event in edge.inputs]
        else:
            # the event is dead at this node (no live product mentions
            # it), so its arrival is sampled and dropped: every existing
            # edge doubles as an arrival edge
            arrivals = [Edge(edge.inputs | {prop.event}, edge.target,
                             edge.fired)
                        for edge in space.edges[node]]
        for edge in arrivals:
            tail = avoid(edge.target, prop.cycles - 1)
            if tail is UNKNOWN:
                saw_unknown = True
                continue
            if tail is not None:
                trace = (tuple(space.trace_to(node))
                         + (edge.inputs,) + tuple(tail))
                witness = Witness(
                    property_text=prop.text, kind="always-reach",
                    trace=trace,
                    expect={"state": prop.state, "event": prop.event,
                            "cycles": prop.cycles})
                return PropertyVerdict(
                    prop, VIOLATED,
                    f"a run avoids {prop.state!r} for {prop.cycles} "
                    f"cycle(s) after {prop.event!r}", witness)
    if saw_unknown or not space.complete:
        return PropertyVerdict(prop, BOUND_EXHAUSTED, _bound_detail(space))
    return PropertyVerdict(
        prop, PROVED,
        f"every run reaches {prop.state!r} within {prop.cycles} cycle(s) "
        f"of {prop.event!r}")


def _realize(space: ExploredSpace, sequence: Sequence[int]
             ) -> Optional[Tuple[BmcNode, List[Edge]]]:
    """Drive the explored graph through *sequence* in order.

    An edge advances the sequence when it fires the next wanted transition
    (parallel co-firings are fine); a quiescent edge (nothing fired) waits
    without advancing; any other edge would execute work the cycle does not
    account for, so it is not taken.  Returns the start node and the edge
    path of the shortest realization, or None.
    """
    if not sequence:
        return None
    wanted = list(sequence)
    queue: List[Tuple[BmcNode, int]] = []
    parents: Dict[Tuple[BmcNode, int],
                  Tuple[Tuple[BmcNode, int], Edge]] = {}
    seen: Set[Tuple[BmcNode, int]] = set()
    for node in space.nodes:
        state = (node, 0)
        queue.append(state)
        seen.add(state)
    head = 0
    while head < len(queue):
        node, position = queue[head]
        head += 1
        if position == len(wanted):
            path: List[Edge] = []
            state = (node, position)
            while state in parents:
                state, edge = parents[state]
                path.append(edge)
            path.reverse()
            return state[0], path
        if node not in space.expanded:
            continue
        for edge in space.edges[node]:
            if wanted[position] in edge.fired:
                succ = (edge.target, position + 1)
            elif not edge.fired:
                succ = (edge.target, position)
            else:
                continue
            if succ not in seen:
                seen.add(succ)
                parents[succ] = ((node, position), edge)
                queue.append(succ)
    return None


def _check_deadline(prop: Deadline, space: ExploredSpace, validator,
                    out: Collector, location: SourceLocation
                    ) -> PropertyVerdict:
    budget = prop.budget
    if budget is None:
        budget = space.chart.events[prop.event].period
    cycles = validator.event_cycles(prop.event)
    if not cycles:
        return PropertyVerdict(
            prop, PROVED,
            f"no event cycle consumes {prop.event!r}; nothing can exceed "
            f"{budget} cycles")
    over = [c for c in cycles if c.length > budget]
    for cycle in over:
        realized = _realize(space, cycle.transition_indices)
        if realized is None:
            continue
        start, path = realized
        trace = (tuple(space.trace_to(start))
                 + tuple(edge.inputs for edge in path))
        witness = Witness(
            property_text=prop.text, kind="deadline", trace=trace,
            expect={"event": prop.event,
                    "transitions": list(cycle.transition_indices),
                    "length": cycle.length, "budget": budget})
        return PropertyVerdict(
            prop, VIOLATED,
            f"cycle {{{', '.join(cycle.states)}}} of length "
            f"{cycle.length} > {budget} is realizable", witness)
    if not space.complete:
        return PropertyVerdict(prop, BOUND_EXHAUSTED, _bound_detail(space))
    worst = None
    for cycle in cycles:  # longest first
        if _realize(space, cycle.transition_indices) is not None:
            worst = cycle
            break
    if over:
        out.emit(
            "PSC612",
            f"deadline {prop.event!r}: {len(over)} heuristic cycle(s) up "
            f"to length {over[0].length} exceed {budget} but none is "
            "realizable in the complete explored space — the estimate "
            "was pessimistic",
            location=location)
    if worst is None:
        detail = (f"no heuristic cycle of {prop.event!r} is realizable; "
                  f"worst case 0 <= {budget}")
    else:
        detail = (f"proven worst realizable cycle "
                  f"{{{', '.join(worst.states)}}} has length "
                  f"{worst.length} <= {budget} "
                  f"(heuristic bound {cycles[0].length})")
    return PropertyVerdict(prop, PROVED, detail)


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------

def check_system(chart: Chart, source: str, system, *,
                 properties_text: Optional[str] = None,
                 properties_path: Optional[str] = None,
                 depth: int = 40,
                 max_states: int = 20000,
                 include_declared_deadlines: bool = True,
                 chart_path: Optional[str] = None,
                 witness_dir: Optional[str] = None,
                 label: str = "chart",
                 suppress: Sequence[str] = (),
                 enable: Sequence[str] = ()) -> CheckResult:
    """Model-check one built system against its declared properties.

    *system* is the :class:`~repro.flow.build.BuiltSystem` whose machine
    replays witnesses and whose validator supplies the heuristic event
    cycles that deadline properties prove or refute.
    """
    from repro.action.check import Checker, Externals
    from repro.action.parser import parse_with_preamble

    out = Collector()
    parsed: ParsedProperties = parse_properties(
        chart, sidecar_text=properties_text,
        sidecar_path=properties_path, chart_path=chart_path)
    out.diagnostics.extend(parsed.diagnostics)

    props: List[Property] = list(parsed.properties)
    if include_declared_deadlines:
        explicit = {p.event for p in props if isinstance(p, Deadline)}
        for event in chart.constrained_events():
            if event.name not in explicit:
                props.append(Deadline(f"deadline {event.name}",
                                      origin=None, line=None,
                                      event=event.name, budget=None))

    if parsed.diagnostics:
        # broken property input: report it, check nothing
        return CheckResult(
            diagnostics=finalize(out.diagnostics, suppress=suppress,
                                 enable=enable),
            verdicts=(), nodes=0, complete=False,
            truncation="property errors")

    program = parse_with_preamble(source)
    checked = Checker(program, Externals.from_chart(chart)).analyze()
    actions = abstract_actions(chart, checked)

    explorer = Explorer(chart, actions, depth=depth, max_states=max_states)
    space = explorer.explore()

    verdicts: List[PropertyVerdict] = []
    for index, prop in enumerate(props):
        location = prop.location() if prop.origin or prop.line else \
            SourceLocation(file=chart_path, obj=f"property {prop.text!r}")
        if isinstance(prop, NeverWhile):
            verdict = _check_never_while(prop, space)
        elif isinstance(prop, NeverIn):
            verdict = _check_never_in(prop, space)
        elif isinstance(prop, AlwaysReach):
            verdict = _check_always_reach(prop, space)
        elif isinstance(prop, Deadline):
            verdict = _check_deadline(prop, space, system.validator, out,
                                      location)
        else:  # pragma: no cover - parser only builds the four forms
            continue

        if verdict.status == VIOLATED:
            assert verdict.witness is not None
            witness, recorder = replay_witness(system, verdict.witness)
            if witness.replayed:
                if witness_dir is not None:
                    files = write_witness(witness, recorder, witness_dir,
                                          f"{label}.p{index}")
                    verdict.witness_files = files
                    artifact = f" [witness: {os.path.basename(files[0])}]"
                else:
                    artifact = ""
                code = ("PSC611" if isinstance(prop, Deadline)
                        else "PSC602")
                out.emit(
                    code,
                    f"property {prop.text!r} violated: {verdict.detail}; "
                    f"trace of {len(witness.trace)} cycle(s) replayed on "
                    f"the machine ({witness.replay_detail})"
                    f"{artifact}",
                    location=location)
            else:
                verdict.status = UNCONFIRMED
                out.emit(
                    "PSC605",
                    f"property {prop.text!r}: abstract counterexample did "
                    f"not replay ({witness.replay_detail}); the abstraction "
                    "over-approximates routine data",
                    location=location,
                    hint="raise --depth or inspect the routine branches "
                         "the trace depends on")
        if verdict.status == PROVED:
            code = "PSC610" if isinstance(prop, Deadline) else "PSC603"
            out.emit(code,
                     f"property {prop.text!r} proved: {verdict.detail}",
                     location=location)
        elif verdict.status == BOUND_EXHAUSTED:
            out.emit(
                "PSC604",
                f"property {prop.text!r} undecided: {verdict.detail}; "
                f"explored {len(space.nodes)} state(s)",
                location=location,
                hint="raise --depth/--max-states for a verdict")
        verdicts.append(verdict)

    return CheckResult(
        diagnostics=finalize(out.diagnostics, suppress=suppress,
                             enable=enable),
        verdicts=tuple(verdicts),
        nodes=len(space.nodes),
        complete=space.complete,
        truncation=space.truncation,
        space=space)
