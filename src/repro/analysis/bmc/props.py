"""The declarative property language of the bounded model checker.

Four property forms (grammar in docs/CHECKING.md), one per line::

    never <State> while <State>
    never <cond-expr> in <State>
    always reach <State> within <N> cycles of <Event>
    deadline <Event> [<N>]

Properties come from two places and are concatenated in order:

* ``property "..."`` declarations in the textual chart
  (:attr:`repro.statechart.model.Chart.properties`);
* a sidecar file (``--properties``), ``#``/``//`` comments and blank lines
  ignored, one property per line (a trailing ``;`` is tolerated).

Parsing is deliberately total: malformed text becomes a PSC600 diagnostic,
names that the chart does not declare become PSC601 — the checker never
throws on user property input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.diag import Collector, Diagnostic, SourceLocation
from repro.statechart.expr import Expr, ExprError, parse_expr
from repro.statechart.model import Chart

_ALWAYS_RE = re.compile(
    r"^always\s+reach\s+(?P<state>@?\w+)\s+within\s+(?P<k>\d+)\s+"
    r"cycles?\s+of\s+(?P<event>\w+)$")
_DEADLINE_RE = re.compile(r"^deadline\s+(?P<event>\w+)(?:\s+(?P<n>\d+))?$")


@dataclass(frozen=True)
class Property:
    """Base class: the verbatim source text plus its origin."""

    text: str
    origin: Optional[str] = None  # file the property came from
    line: Optional[int] = None

    def location(self) -> SourceLocation:
        return SourceLocation(file=self.origin, line=self.line,
                              obj=f"property {self.text!r}")


@dataclass(frozen=True)
class NeverWhile(Property):
    """``never A while B``: no reachable configuration holds both states."""

    state_a: str = ""
    state_b: str = ""


@dataclass(frozen=True)
class NeverIn(Property):
    """``never <cond-expr> in S``: the condition expression is false
    whenever S is part of the configuration."""

    state: str = ""
    expr_text: str = ""
    expr: Optional[Expr] = None


@dataclass(frozen=True)
class AlwaysReach(Property):
    """``always reach S within k cycles of E``: every run entered by an
    arrival of E is in a configuration containing S within k cycles."""

    state: str = ""
    cycles: int = 0
    event: str = ""


@dataclass(frozen=True)
class Deadline(Property):
    """``deadline E [n]``: the worst *realizable* event cycle of E fits in
    n reference-clock cycles (default: E's declared arrival period)."""

    event: str = ""
    budget: Optional[int] = None  # None -> declared period


@dataclass
class ParsedProperties:
    """Outcome of parsing one property source: properties + diagnostics."""

    properties: List[Property] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _parse_one(text: str, chart: Chart, out: Collector,
               origin: Optional[str], line: Optional[int]
               ) -> Optional[Property]:
    location = SourceLocation(file=origin, line=line,
                              obj=f"property {text!r}")

    def unknown(kind: str, name: str) -> None:
        out.emit("PSC601",
                 f"property {text!r}: unknown {kind} {name!r}",
                 location=location,
                 hint=f"declare {name!r} in the chart or fix the spelling")

    def check_state(name: str) -> bool:
        if name not in chart.states:
            unknown("state", name)
            return False
        return True

    def check_event(name: str) -> bool:
        if name not in chart.events:
            unknown("event", name)
            return False
        return True

    words = text.split()
    if words and words[0] == "never" and " while " in text:
        parts = text[len("never"):].split(" while ")
        if len(parts) == 2:
            a, b = parts[0].strip(), parts[1].strip()
            if re.fullmatch(r"@?\w+", a) and re.fullmatch(r"@?\w+", b):
                if check_state(a) & check_state(b):
                    return NeverWhile(text, origin, line,
                                      state_a=a, state_b=b)
                return None
    if words and words[0] == "never" and " in " in text:
        expr_text, _, state = text[len("never"):].rpartition(" in ")
        expr_text, state = expr_text.strip(), state.strip()
        if re.fullmatch(r"@?\w+", state):
            try:
                expr = parse_expr(expr_text)
            except ExprError as exc:
                out.emit("PSC600",
                         f"property {text!r}: bad condition expression: "
                         f"{exc}", location=location)
                return None
            ok = check_state(state)
            for name in sorted(expr.names()):
                if name not in chart.conditions:
                    unknown("condition", name)
                    ok = False
            return NeverIn(text, origin, line, state=state,
                           expr_text=expr_text, expr=expr) if ok else None
    match = _ALWAYS_RE.match(text)
    if match is not None:
        if check_state(match.group("state")) & check_event(
                match.group("event")):
            return AlwaysReach(text, origin, line,
                               state=match.group("state"),
                               cycles=int(match.group("k")),
                               event=match.group("event"))
        return None
    match = _DEADLINE_RE.match(text)
    if match is not None:
        event = match.group("event")
        if not check_event(event):
            return None
        budget = int(match.group("n")) if match.group("n") else None
        if budget is None and chart.events[event].period is None:
            out.emit("PSC600",
                     f"property {text!r}: event {event!r} declares no "
                     "period and the property gives no budget",
                     location=location,
                     hint="write 'deadline EVENT N' or declare a period")
            return None
        return Deadline(text, origin, line, event=event, budget=budget)
    out.emit("PSC600",
             f"property does not parse: {text!r}",
             location=location,
             hint="forms: 'never A while B', 'never <expr> in S', "
                  "'always reach S within N cycles of E', "
                  "'deadline E [N]'")
    return None


def parse_properties(chart: Chart, *,
                     sidecar_text: Optional[str] = None,
                     sidecar_path: Optional[str] = None,
                     chart_path: Optional[str] = None) -> ParsedProperties:
    """All properties of a chart: embedded declarations, then the sidecar."""
    result = ParsedProperties()
    out = Collector()
    for decl in chart.properties:
        prop = _parse_one(decl.text.strip(), chart, out,
                          chart_path, decl.line)
        if prop is not None:
            result.properties.append(prop)
    if sidecar_text is not None:
        for number, raw in enumerate(sidecar_text.splitlines(), start=1):
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            line = line.rstrip(";").strip()
            if not line:
                continue
            prop = _parse_one(line, chart, out, sidecar_path, number)
            if prop is not None:
                result.properties.append(prop)
    result.diagnostics = out.diagnostics
    return result
