"""The bounded step-relation explorer under the machine's semantics.

A symbolic state (:data:`BmcNode`) is the triple the hardware actually
latches between configuration cycles::

    (active configuration, true conditions, pending raised events)

Exploration is breadth-first from the chart's initial node.  From each node
the environment's choices are *not* enumerated over all ``2^|events|``
subsets: the enable products of the outgoing transitions
(:func:`repro.analysis.chart_lint.enable_products`) are partially evaluated
against the node's fixed condition values and pending events, and only the
event literals that survive in some product — the **decision events** — can
change what fires.  Every other event is sampled and dropped by the CR, so
one representative suffices.  This is the pruning the ISSUE's "enable
products instead of ``2^n``" refers to: conditions are part of the node (no
valuation enumeration at all), and the input alphabet collapses to the
products' free literals.

One cycle mirrors :meth:`repro.statechart.semantics.Interpreter.step`
exactly — same enabledness, the *same* :func:`select_transitions` conflict
resolution, same exit/entry accumulation — so a path through this graph is
a candidate execution of the real machine.  Action routines are abstracted
by their effect summaries (:mod:`repro.analysis.effects`), split into

* **must** effects — top-level, unconditional ``SetTrue``/``SetFalse``/
  ``Raise`` calls, applied exactly; and
* **may** effects — writes/raises under a branch or loop, which fork the
  successor state (the routine's data decides concretely; we keep both).

The may-fork makes the explored space a *superset* of the concrete
reachable space: "never" proofs over it are sound, while counterexamples
are only reported after they replay on the real machine
(:mod:`repro.analysis.bmc.witness`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.action.ast import Call, ExprStmt, Function
from repro.action.check import CheckedProgram
from repro.action.stdlib import is_builtin
from repro.analysis.chart_lint import enable_products
from repro.analysis.effects import EffectAnalyzer, Effects
from repro.statechart.labels import action_arguments, action_routine_name
from repro.statechart.model import Chart, Transition
from repro.statechart.semantics import select_transitions

#: (configuration, true conditions, pending raised events)
BmcNode = Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]


# ---------------------------------------------------------------------------
# must/may action abstraction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ActionAbstraction:
    """One transition's action, split into exact and forking effects."""

    #: condition writes that always happen, in program order (last wins)
    must_cond: Tuple[Tuple[str, bool], ...] = ()
    #: events that are always raised
    must_raise: FrozenSet[str] = frozenset()
    #: condition writes that may or may not happen (value None: either way)
    may_cond: Tuple[Tuple[str, Optional[bool]], ...] = ()
    #: events that may or may not be raised
    may_raise: Tuple[str, ...] = ()

    @property
    def fork_count(self) -> int:
        forks = 1
        for _, value in self.may_cond:
            forks *= 3 if value is None else 2
        forks *= 2 ** len(self.may_raise)
        return forks


def _top_level_builtins(program, function: Function, chart: Chart,
                        seen: FrozenSet[str]
                        ) -> Tuple[List[Tuple[str, bool]], Set[str]]:
    """Unconditional builtin effects of a function body, in order."""
    cond: List[Tuple[str, bool]] = []
    raised: Set[str] = set()
    for stmt in function.body:
        if not isinstance(stmt, ExprStmt) or not isinstance(stmt.expr, Call):
            continue
        call = stmt.expr
        if is_builtin(call.name):
            target = str(call.args[0]).strip() if call.args else ""
            if call.name == "SetTrue" and target in chart.conditions:
                cond.append((target, True))
            elif call.name == "SetFalse" and target in chart.conditions:
                cond.append((target, False))
            elif call.name == "Raise" and target in chart.events:
                raised.add(target)
            continue
        if call.name in seen:
            continue
        try:
            callee = program.function(call.name)
        except KeyError:
            continue
        sub_cond, sub_raised = _top_level_builtins(
            program, callee, chart, seen | {call.name})
        cond.extend(sub_cond)
        raised |= sub_raised
    return cond, raised


def abstract_actions(chart: Chart, checked: CheckedProgram
                     ) -> Dict[int, ActionAbstraction]:
    """Per-transition must/may abstraction of every action."""
    analyzer = EffectAnalyzer(checked)
    out: Dict[int, ActionAbstraction] = {}
    for transition in chart.transitions:
        if not transition.action:
            continue
        full: Effects = analyzer.action_effects(transition.action)
        name = action_routine_name(transition.action)
        if is_builtin(name):
            arguments = action_arguments(transition.action)
            target = arguments[0].strip() if arguments else ""
            must_cond: List[Tuple[str, bool]] = []
            must_raise: Set[str] = set()
            if name == "SetTrue" and target in chart.conditions:
                must_cond.append((target, True))
            elif name == "SetFalse" and target in chart.conditions:
                must_cond.append((target, False))
            elif name == "Raise" and target in chart.events:
                must_raise.add(target)
        else:
            try:
                function = checked.program.function(name)
            except KeyError:
                function = None
            if function is None:
                must_cond, must_raise = [], set()
            else:
                must_cond, must_raise = _top_level_builtins(
                    checked.program, function, chart, frozenset({name}))
        must_keys = {(c, v) for c, v in must_cond}
        may_cond = tuple(sorted(
            (c, v) for c, v in full.cond_writes
            if c in chart.conditions and (c, v) not in must_keys))
        may_raise = tuple(sorted(
            e for e in full.raises
            if e in chart.events and e not in must_raise))
        out[transition.index] = ActionAbstraction(
            must_cond=tuple(must_cond),
            must_raise=frozenset(must_raise),
            may_cond=may_cond,
            may_raise=may_raise)
    return out


# ---------------------------------------------------------------------------
# the explored space
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Edge:
    """One abstract step: external inputs -> successor, with what fired."""

    inputs: FrozenSet[str]
    target: BmcNode
    fired: Tuple[int, ...]


@dataclass
class ExploredSpace:
    """The reachable graph up to the bound, with provenance for witnesses."""

    chart: Chart
    initial: BmcNode
    nodes: Dict[BmcNode, int] = field(default_factory=dict)  # node -> depth
    edges: Dict[BmcNode, Tuple[Edge, ...]] = field(default_factory=dict)
    #: per expanded node, the input alphabet that was branched on; events
    #: outside it provably cannot change the node's step (their products
    #: are dead), so an arrival of one reuses the existing edges
    decisions: Dict[BmcNode, Tuple[str, ...]] = field(default_factory=dict)
    parent: Dict[BmcNode, Tuple[BmcNode, FrozenSet[str]]] = \
        field(default_factory=dict)
    expanded: Set[BmcNode] = field(default_factory=set)
    #: True when every reachable node was expanded within the bound — only
    #: then do "not found" results count as proofs
    complete: bool = True
    truncation: Optional[str] = None
    abstraction_forks: int = 0

    def trace_to(self, node: BmcNode) -> List[FrozenSet[str]]:
        """External-event inputs driving the machine from reset to *node*."""
        steps: List[FrozenSet[str]] = []
        current = node
        while current != self.initial:
            previous, inputs = self.parent[current]
            steps.append(inputs)
            current = previous
        steps.reverse()
        return steps

    def mark_incomplete(self, reason: str) -> None:
        self.complete = False
        if self.truncation is None:
            self.truncation = reason


class Explorer:
    """Breadth-first bounded exploration of one chart's step relation."""

    def __init__(self, chart: Chart,
                 actions: Dict[int, ActionAbstraction],
                 *,
                 depth: int = 40,
                 max_states: int = 20000,
                 max_decision_events: int = 14,
                 max_forks_per_step: int = 16,
                 watch_events: Iterable[str] = ()) -> None:
        self.chart = chart
        self.actions = actions
        self.depth = depth
        self.max_states = max_states
        self.max_decision_events = max_decision_events
        self.max_forks_per_step = max_forks_per_step
        self.watch_events = frozenset(watch_events) & set(chart.events)
        self._products = {t.index: enable_products(t)
                          for t in chart.transitions}
        self._outgoing: Dict[str, List[Transition]] = {}
        for transition in chart.transitions:
            self._outgoing.setdefault(transition.source, []).append(
                transition)

    # -- the input alphabet ------------------------------------------------
    def decision_events(self, node: BmcNode, space: ExploredSpace
                        ) -> List[str]:
        """Events whose presence can change what fires from *node*.

        A product already contradicted by the node's condition values or
        satisfied-by-pending literals contributes nothing; the surviving
        products' event literals are the only inputs worth branching on.
        """
        config, conds, pending = node
        events = set(self.chart.events)
        conditions = set(self.chart.conditions)
        decisions: Set[str] = set()
        for source in sorted(config):
            for transition in self._outgoing.get(source, ()):
                for pos, neg in self._products[transition.index]:
                    # conditions are fixed by the node: prune dead products
                    if any(c in conditions and c not in conds for c in pos):
                        continue
                    if any(c in conditions and c in conds for c in neg):
                        continue
                    # pending raised events are asserted regardless
                    if any(e in pending for e in neg):
                        continue
                    decisions |= {n for n in (pos | neg)
                                  if n in events and n not in pending}
        decisions |= {e for e in self.watch_events if e not in pending}
        ordered = sorted(decisions)
        if len(ordered) > self.max_decision_events:
            space.mark_incomplete(
                f"{len(ordered)} decision events at one node exceed the "
                f"cap of {self.max_decision_events}")
            ordered = ordered[:self.max_decision_events]
        return ordered

    # -- one abstract step -------------------------------------------------
    def successors(self, node: BmcNode, space: ExploredSpace) -> List[Edge]:
        config, conds, pending = node
        edges: List[Edge] = []
        seen: Set[Tuple[FrozenSet[str], BmcNode, Tuple[int, ...]]] = set()
        decisions = self.decision_events(node, space)
        space.decisions[node] = tuple(decisions)
        for mask in range(1 << len(decisions)):
            external = frozenset(
                decisions[i] for i in range(len(decisions))
                if mask & (1 << i))
            for edge in self._step(node, external, space):
                key = (edge.inputs, edge.target, edge.fired)
                if key not in seen:
                    seen.add(key)
                    edges.append(edge)
        return edges

    def _step(self, node: BmcNode, external: FrozenSet[str],
              space: ExploredSpace) -> List[Edge]:
        """All abstract outcomes of one cycle under *external* inputs."""
        config, conds, pending = node
        visible = external | pending
        asserted = visible | conds
        enabled = []
        for source in sorted(config):
            for transition in self._outgoing.get(source, ()):
                trigger, guard = transition.trigger, transition.guard
                if trigger is not None and not trigger.evaluate(asserted):
                    continue
                if guard is not None and not guard.evaluate(asserted):
                    continue
                enabled.append(transition)
        fired = select_transitions(self.chart, enabled)

        new_config = set(config)
        for transition in fired:
            exit_set = self.chart.exit_set(transition, frozenset(new_config))
            new_config -= exit_set
            new_config |= self.chart.entry_set(transition)
        frozen_config = frozenset(new_config)
        fired_indices = tuple(t.index for t in fired)

        # must effects, in firing order; collect may choices
        base_conds = dict.fromkeys(conds, True)
        base_raised: Set[str] = set()
        may_cond: List[Tuple[str, Optional[bool]]] = []
        may_raise: List[str] = []
        forks = 1
        for transition in fired:
            abstraction = self.actions.get(transition.index)
            if abstraction is None:
                continue
            for name, value in abstraction.must_cond:
                if value:
                    base_conds[name] = True
                else:
                    base_conds.pop(name, None)
            base_raised |= abstraction.must_raise
            may_cond.extend(abstraction.may_cond)
            may_raise.extend(abstraction.may_raise)
            forks *= abstraction.fork_count
        may_cond = sorted(set(may_cond))
        may_raise = sorted(set(may_raise) - base_raised)

        if forks > self.max_forks_per_step:
            space.mark_incomplete(
                f"{forks} abstraction forks at one step exceed the cap of "
                f"{self.max_forks_per_step}")
            may_cond, may_raise = [], []

        edges: List[Edge] = []
        choices = self._fork_choices(may_cond, may_raise)
        space.abstraction_forks += len(choices) - 1
        for cond_choice, raise_choice in choices:
            out_conds = dict(base_conds)
            for name, value in cond_choice:
                if value:
                    out_conds[name] = True
                else:
                    out_conds.pop(name, None)
            out_raised = frozenset(base_raised | set(raise_choice))
            target: BmcNode = (frozen_config,
                               frozenset(out_conds),
                               out_raised)
            edges.append(Edge(inputs=external, target=target,
                              fired=fired_indices))
        return edges

    @staticmethod
    def _fork_choices(may_cond: Sequence[Tuple[str, Optional[bool]]],
                      may_raise: Sequence[str]
                      ) -> List[Tuple[Tuple[Tuple[str, bool], ...],
                                      Tuple[str, ...]]]:
        cond_alternatives: List[List[Tuple[Tuple[str, bool], ...]]] = []
        for name, value in may_cond:
            if value is None:
                cond_alternatives.append([(), ((name, True),),
                                          ((name, False),)])
            else:
                cond_alternatives.append([(), ((name, bool(value)),)])
        cond_choices: List[Tuple[Tuple[str, bool], ...]] = [()]
        for alternatives in cond_alternatives:
            cond_choices = [existing + alt
                            for existing in cond_choices
                            for alt in alternatives]
        raise_choices: List[Tuple[str, ...]] = [()]
        for name in may_raise:
            raise_choices = [existing + extra
                             for existing in raise_choices
                             for extra in ((), (name,))]
        return [(c, r) for c in cond_choices for r in raise_choices]

    # -- the search --------------------------------------------------------
    def initial_node(self) -> BmcNode:
        conds = frozenset(name for name, condition
                          in self.chart.conditions.items()
                          if condition.initial)
        return (self.chart.initial_configuration(), conds, frozenset())

    def explore(self) -> ExploredSpace:
        initial = self.initial_node()
        space = ExploredSpace(chart=self.chart, initial=initial)
        space.nodes[initial] = 0
        queue: List[BmcNode] = [initial]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            node_depth = space.nodes[node]
            if node_depth >= self.depth:
                space.mark_incomplete(
                    f"depth bound {self.depth} reached")
                continue
            edges = tuple(self.successors(node, space))
            space.edges[node] = edges
            space.expanded.add(node)
            for edge in edges:
                if edge.target in space.nodes:
                    continue
                if len(space.nodes) >= self.max_states:
                    space.mark_incomplete(
                        f"state budget {self.max_states} exhausted")
                    continue
                space.nodes[edge.target] = node_depth + 1
                space.parent[edge.target] = (node, edge.inputs)
                queue.append(edge.target)
        return space
