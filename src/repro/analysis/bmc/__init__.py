"""Bounded model checking on the enable-product algebra.

``repro check`` front door: declared safety properties, deadline proofs and
replayable counterexamples over the machine's real step semantics.  See
docs/CHECKING.md for the property grammar and verdict semantics.
"""

from repro.analysis.bmc.checker import (
    BOUND_EXHAUSTED,
    CheckResult,
    PROVED,
    PropertyVerdict,
    UNCONFIRMED,
    VIOLATED,
    check_system,
)
from repro.analysis.bmc.explorer import (
    ActionAbstraction,
    BmcNode,
    Edge,
    ExploredSpace,
    Explorer,
    abstract_actions,
)
from repro.analysis.bmc.props import (
    AlwaysReach,
    Deadline,
    NeverIn,
    NeverWhile,
    ParsedProperties,
    Property,
    parse_properties,
)
from repro.analysis.bmc.witness import (
    Witness,
    load_witness,
    replay_witness,
    write_witness,
)

__all__ = [
    "ActionAbstraction",
    "AlwaysReach",
    "BOUND_EXHAUSTED",
    "BmcNode",
    "CheckResult",
    "Deadline",
    "Edge",
    "ExploredSpace",
    "Explorer",
    "NeverIn",
    "NeverWhile",
    "PROVED",
    "ParsedProperties",
    "Property",
    "PropertyVerdict",
    "UNCONFIRMED",
    "VIOLATED",
    "Witness",
    "abstract_actions",
    "check_system",
    "load_witness",
    "parse_properties",
    "replay_witness",
    "write_witness",
]
