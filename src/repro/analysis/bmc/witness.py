"""Counterexample witnesses: concrete traces, machine replay, forensics.

An abstract violation is only a *candidate*: the explorer forks on may
effects, so a path can exist in the abstraction that the routines' real
data semantics never take.  Before the checker reports PSC602/PSC611 it
drives the actual :class:`~repro.pscp.machine.PscpMachine` (built by the
same flow that synthesizes the hardware) with the witness's external-event
trace, a FlightRecorder attached, and re-evaluates the violated predicate
on the machine's own configuration register.  Only a confirmed replay is an
error; a diverging one is reported honestly as PSC605.

Artifacts written next to the report (``write_witness``):

* ``<base>.witness.json`` — the replayable event trace plus the expected
  violation, machine-readable for CI re-replay;
* ``<base>.forensics.json`` — the FlightRecorder post-mortem bundle
  (:data:`repro.obs.flightrec.FORENSICS_VERSION`) captured at the violating
  cycle.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.obs.flightrec import FlightRecorder, write_forensics_bundle

WITNESS_VERSION = 1


@dataclass
class Witness:
    """A concrete counterexample candidate for one property."""

    property_text: str
    kind: str  # never-while | never-in | always-reach | deadline
    trace: Tuple[FrozenSet[str], ...]
    expect: Dict[str, object] = field(default_factory=dict)
    replayed: Optional[bool] = None
    replay_detail: str = ""
    final_configuration: Tuple[str, ...] = ()
    final_conditions: Tuple[Tuple[str, bool], ...] = ()

    def to_json(self) -> Dict[str, object]:
        return {
            "version": WITNESS_VERSION,
            "property": self.property_text,
            "kind": self.kind,
            "trace": [sorted(step) for step in self.trace],
            "expect": self.expect,
            "replayed": self.replayed,
            "replay_detail": self.replay_detail,
            "final_configuration": list(self.final_configuration),
            "final_conditions": [[name, value] for name, value
                                 in self.final_conditions],
        }


def _check_expectation(witness: Witness,
                       steps: Sequence,
                       final: FrozenSet[str],
                       conditions: Dict[str, bool]) -> Tuple[bool, str]:
    """Does the machine's run violate the property the way we predicted?

    *final* is the machine's configuration after the whole trace — the
    never-forms are judged on it directly, so a zero-length trace (the
    initial configuration already violates) replays fine.
    """
    expect = witness.expect
    if witness.kind == "never-while":
        states = expect["states"]
        missing = [s for s in states if s not in final]
        if missing:
            return False, (f"machine ended in {sorted(final)}; "
                           f"missing {missing}")
        return True, f"configuration holds {states} simultaneously"
    if witness.kind == "never-in":
        state = expect["state"]
        if state not in final:
            return False, f"machine did not end inside {state!r}"
        from repro.statechart.expr import parse_expr
        asserted = {name for name, value in conditions.items() if value}
        if not parse_expr(expect["expr"]).evaluate(asserted):
            return False, (f"condition expression {expect['expr']!r} is "
                           "false on the machine")
        return True, (f"{expect['expr']!r} true inside {state!r}")
    if not steps:
        return False, "empty trace"
    if witness.kind == "always-reach":
        state, window = expect["state"], int(expect["cycles"])
        tail = steps[-window:]
        hit = [i for i, step in enumerate(tail)
               if state in step.configuration]
        if hit:
            return False, f"machine reached {state!r} within the window"
        return True, (f"{state!r} not reached for {window} cycles after "
                      f"{expect['event']!r}")
    if witness.kind == "deadline":
        sequence = list(expect["transitions"])
        position = 0
        for step in steps:
            fired = {t.index for t in step.fired}
            if position < len(sequence) and sequence[position] in fired:
                position += 1
        if position < len(sequence):
            return False, (f"machine fired only {position}/{len(sequence)} "
                           "cycle transitions")
        return True, (f"event cycle of {len(sequence)} transition(s) "
                      "executed in order")
    return False, f"unknown witness kind {witness.kind!r}"


def replay_witness(system, witness: Witness,
                   recorder_capacity: int = 128
                   ) -> Tuple[Witness, FlightRecorder]:
    """Drive the real machine along the witness trace and verdict it.

    Returns the witness (mutated in place with the replay outcome) and the
    attached recorder, ready for a forensics dump.
    """
    machine = system.make_machine()
    recorder = FlightRecorder(capacity=recorder_capacity)
    machine.attach_recorder(recorder)
    steps = []
    try:
        for events in witness.trace:
            steps.append(machine.step(sorted(events)))
    except Exception as exc:  # noqa: BLE001 - replay must never crash check
        witness.replayed = False
        witness.replay_detail = f"machine rejected the trace: {exc}"
        return witness, recorder
    conditions = dict(machine.cr.condition_vector())
    final = frozenset(machine.cr.configuration)
    ok, detail = _check_expectation(witness, steps, final, conditions)
    witness.replayed = ok
    witness.replay_detail = detail
    witness.final_configuration = tuple(sorted(final))
    witness.final_conditions = tuple(sorted(conditions.items()))
    if ok:
        recorder.note_escalation(machine.cycle_count,
                                 "model-check",
                                 f"property violated: "
                                 f"{witness.property_text}")
    return witness, recorder


def write_witness(witness: Witness, recorder: FlightRecorder,
                  directory: str, base: str) -> Tuple[str, str]:
    """Write the replay artifact pair; returns (witness path, bundle path)."""
    os.makedirs(directory, exist_ok=True)
    witness_path = os.path.join(directory, f"{base}.witness.json")
    bundle_path = os.path.join(directory, f"{base}.forensics.json")
    with open(witness_path, "w") as handle:
        json.dump(witness.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    bundle = recorder.forensics_bundle(
        cause={"kind": "model-check",
               "property": witness.property_text,
               "replayed": witness.replayed})
    write_forensics_bundle(bundle, bundle_path)
    return witness_path, bundle_path


def load_witness(path: str) -> Witness:
    """Load a ``*.witness.json`` artifact back for re-replay (CI uses it)."""
    with open(path) as handle:
        doc = json.load(handle)
    return Witness(
        property_text=doc["property"],
        kind=doc["kind"],
        trace=tuple(frozenset(step) for step in doc["trace"]),
        expect=doc["expect"],
        replayed=doc.get("replayed"),
        replay_detail=doc.get("replay_detail", ""),
        final_configuration=tuple(doc.get("final_configuration", ())),
        final_conditions=tuple((name, value) for name, value
                               in doc.get("final_conditions", ())),
    )
