"""Action effect analysis: what a transition's routine reads and writes.

The race pass (PSC203) needs to know, per transition, which globals, ports
and conditions its action may touch within one configuration cycle.  This
module computes a conservative :class:`Effects` summary from the checked
intermediate-C program, transitively through calls, and — crucially for
precision — *context-sensitively through constant arguments*: the SMD chart
calls ``DeltaT(MX)`` and ``DeltaT(MY)`` from parallel regions, and binding
the constant motor index resolves the writes to ``velocity[0]`` versus
``velocity[1]``, which do not race.

Storage keys
------------

* scalar global ``g`` -> ``"g"``
* array element with a known index -> ``"a[3]"``; unknown index -> ``"a[*]"``
* struct field -> ``"s.f"``; whole-object access -> the bare name
* port ``P`` (assigned directly or via ``WritePort``) -> ``"port:P"``

Conditions and raised events are tracked separately: ``SetTrue``/``SetFalse``
carry the written value, so two parallel ``SetTrue(C)`` calls are idempotent
and do not race, while a ``SetTrue``/``SetFalse`` pair does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.action.ast import (
    Assign,
    Call,
    EnumType,
    Expr,
    ExprStmt,
    FieldAccess,
    Function,
    If,
    Index,
    IntLiteral,
    NameRef,
    Return,
    Stmt,
    VarDecl,
    While,
    walk_expr,
)
from repro.action.check import CheckedProgram
from repro.action.stdlib import is_builtin
from repro.statechart.labels import action_arguments, action_routine_name
from repro.statechart.model import Chart

#: value a parameter is bound to at a call site: a known int or unknown
Binding = Dict[str, Optional[int]]


@dataclass(frozen=True)
class Effects:
    """Conservative read/write summary of one action invocation."""

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    #: (condition name, value) — value None when not statically known
    cond_writes: FrozenSet[Tuple[str, Optional[bool]]] = frozenset()
    raises: FrozenSet[str] = frozenset()

    def merge(self, other: "Effects") -> "Effects":
        return Effects(self.reads | other.reads,
                       self.writes | other.writes,
                       self.cond_writes | other.cond_writes,
                       self.raises | other.raises)


def _base_name(key: str) -> str:
    return key.split("[", 1)[0].split(".", 1)[0]


def _keys_overlap(a: str, b: str) -> bool:
    """Do two storage keys possibly denote the same storage?"""
    if a == b:
        return True
    if _base_name(a) != _base_name(b):
        return False
    # same base object: distinct constant element/field keys are disjoint,
    # anything involving an unknown index or the whole object overlaps
    if "[*]" in a or "[*]" in b:
        return True
    if a == _base_name(a) or b == _base_name(b):
        return True  # whole-object access vs element access
    return False


def write_conflicts(a: Effects, b: Effects) -> List[str]:
    """Human-readable names of storage both effect sets may write."""
    clashes: Set[str] = set()
    for key_a in a.writes:
        for key_b in b.writes:
            if _keys_overlap(key_a, key_b):
                clashes.add(key_a if len(key_a) >= len(key_b) else key_b)
    for name_a, value_a in a.cond_writes:
        for name_b, value_b in b.cond_writes:
            if name_a != name_b:
                continue
            if value_a is not None and value_a == value_b:
                continue  # both write the same truth value: idempotent
            clashes.add(f"condition {name_a}")
    return sorted(
        key if key.startswith(("port:", "condition "))
        else key for key in clashes)


class EffectAnalyzer:
    """Computes per-function and per-transition effect summaries."""

    def __init__(self, checked: CheckedProgram) -> None:
        self.checked = checked
        self.program = checked.program
        self.globals = set(checked.global_types)
        self.enum_values: Dict[str, int] = {}
        for name, typ in checked.global_types.items():
            if isinstance(typ, EnumType) and name in typ.members:
                self.enum_values[name] = typ.value_of(name)
        self._memo: Dict[Tuple[str, Tuple[Tuple[str, Optional[int]], ...]],
                         Effects] = {}

    # -- entry points ------------------------------------------------------
    def action_effects(self, action: str) -> Effects:
        """Effects of a transition action call text like ``DeltaT(MX)``."""
        name = action_routine_name(action)
        arguments = action_arguments(action)
        if is_builtin(name):
            return self._builtin_effects(name, list(arguments))
        try:
            function = self.program.function(name)
        except KeyError:
            return Effects()
        binding: Binding = {}
        for param, argument in zip(function.params, arguments):
            binding[param.name] = self._constant_text(argument)
        return self.function_effects(function, binding)

    def function_effects(self, function: Function,
                         binding: Optional[Binding] = None) -> Effects:
        binding = binding or {}
        used = tuple(sorted((k, v) for k, v in binding.items()
                            if v is not None))
        key = (function.name, used)
        if key in self._memo:
            return self._memo[key]
        # seed the memo to cut off (already rejected) recursion safely
        self._memo[key] = Effects()
        collector = _Collector(self, function, binding)
        collector.walk(function.body)
        effects = collector.result()
        self._memo[key] = effects
        return effects

    # -- helpers -----------------------------------------------------------
    def _constant_text(self, text: str) -> Optional[int]:
        text = text.strip()
        if text in self.enum_values:
            return self.enum_values[text]
        try:
            return int(text, 0)
        except ValueError:
            return None

    def constant_of(self, expr: Expr, binding: Binding) -> Optional[int]:
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, NameRef):
            if expr.name in binding:
                return binding[expr.name]
            if expr.name in self.enum_values:
                return self.enum_values[expr.name]
        return None

    def _builtin_effects(self, name: str, arguments: List[str]) -> Effects:
        target = arguments[0].strip() if arguments else "?"
        if name == "Raise":
            return Effects(raises=frozenset({target}))
        if name == "SetTrue":
            return Effects(cond_writes=frozenset({(target, True)}))
        if name == "SetFalse":
            return Effects(cond_writes=frozenset({(target, False)}))
        if name == "WritePort":
            return Effects(writes=frozenset({f"port:{target}"}))
        if name in ("ReadPort", "Test"):
            return Effects(reads=frozenset({target}))
        return Effects()


class _Collector:
    """Walks one function body under a parameter binding."""

    def __init__(self, analyzer: EffectAnalyzer, function: Function,
                 binding: Binding) -> None:
        self.analyzer = analyzer
        self.function = function
        self.binding = binding
        self.locals: Set[str] = {p.name for p in function.params}
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.cond_writes: Set[Tuple[str, Optional[bool]]] = set()
        self.raises: Set[str] = set()

    def result(self) -> Effects:
        return Effects(frozenset(self.reads), frozenset(self.writes),
                       frozenset(self.cond_writes), frozenset(self.raises))

    # -- statements --------------------------------------------------------
    def walk(self, stmts) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            self.locals.add(stmt.name)
            if stmt.init is not None:
                self.expr(stmt.init)
        elif isinstance(stmt, Assign):
            self.expr(stmt.value)
            self.assign_target(stmt.target)
        elif isinstance(stmt, If):
            self.expr(stmt.cond)
            self.walk(stmt.then_body)
            self.walk(stmt.else_body)
        elif isinstance(stmt, While):
            self.expr(stmt.cond)
            self.walk(stmt.body)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.expr(stmt.value)
        elif isinstance(stmt, ExprStmt):
            self.expr(stmt.expr)

    def assign_target(self, target: Expr) -> None:
        key = self.storage_key(target)
        if key is not None:
            self.writes.add(key)
        # index expressions of the target are reads
        if isinstance(target, Index):
            self.expr(target.index)
            if self.storage_key(target.base) is None:
                self.expr(target.base)
        elif isinstance(target, FieldAccess):
            if self.storage_key(target.base) is None:
                self.expr(target.base)

    def storage_key(self, target: Expr) -> Optional[str]:
        """Canonical write key for an lvalue, or None for locals."""
        if isinstance(target, NameRef):
            if target.name in self.locals:
                return None
            if target.name in self.analyzer.checked.externals.ports:
                return f"port:{target.name}"
            if target.name in self.analyzer.globals:
                return target.name
            return None
        if isinstance(target, Index):
            base = self.storage_key(target.base)
            if base is None:
                return None
            index = self.analyzer.constant_of(target.index, self.binding)
            return f"{base}[{index}]" if index is not None else f"{base}[*]"
        if isinstance(target, FieldAccess):
            base = self.storage_key(target.base)
            return f"{base}.{target.field}" if base is not None else None
        return None

    # -- expressions -------------------------------------------------------
    def expr(self, expr: Expr) -> None:
        for node in walk_expr(expr):
            if isinstance(node, NameRef):
                if (node.name in self.analyzer.globals
                        and node.name not in self.locals):
                    self.reads.add(node.name)
            elif isinstance(node, Call):
                self.call(node)

    def call(self, call: Call) -> None:
        if is_builtin(call.name):
            arguments = [str(a) for a in call.args]
            effects = self.analyzer._builtin_effects(call.name, arguments)
            self.absorb(effects)
            return
        try:
            callee = self.analyzer.program.function(call.name)
        except KeyError:
            return
        binding: Binding = {}
        for param, argument in zip(callee.params, call.args):
            binding[param.name] = self.analyzer.constant_of(
                argument, self.binding)
        self.absorb(self.analyzer.function_effects(callee, binding))

    def absorb(self, effects: Effects) -> None:
        self.reads |= effects.reads
        self.writes |= effects.writes
        self.cond_writes |= effects.cond_writes
        self.raises |= effects.raises


def transition_effects(chart: Chart, checked: CheckedProgram
                       ) -> Dict[int, Effects]:
    """Effect summary for every transition with an action."""
    analyzer = EffectAnalyzer(checked)
    summaries: Dict[int, Effects] = {}
    for transition in chart.transitions:
        if transition.action:
            summaries[transition.index] = analyzer.action_effects(
                transition.action)
    return summaries
