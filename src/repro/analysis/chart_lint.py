"""Statechart analyses: well-formedness, determinism, quiescence.

The well-formedness and design-smell checks are the diagnostic-framework
form of the legacy ``chart_problems``/``chart_warnings`` lists (which now
wrap these functions); the determinism analysis is new — it reasons about
*pairs* of transitions:

* two transitions **conflict** when their scopes are ancestrally related and
  their sources can be part of one configuration; the interpreter resolves
  such conflicts deterministically (outermost scope first, then declaration
  order), so a conflict is only an *error* when the loser can never fire at
  all (its enabling condition is covered by the winner's — PSC201).  A plain
  satisfiable overlap is the documented priority semantics and is reported
  as an opt-in note (PSC202).
* transitions in *different* regions of one AND state fire in the same
  configuration cycle — write-write races on those pairs are found by
  :mod:`repro.analysis.races` (PSC203) using the action effect analysis.

Enabling conditions are compared through their sum-of-products form
(:meth:`repro.statechart.expr.Expr.to_sop`), treating events and conditions
as free variables — an over-approximation of reachability that never calls
two satisfiable enables disjoint.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diag import Collector, Diagnostic, SourceLocation
from repro.statechart.model import Chart, StateKind, Transition

#: One product term of an enabling condition: (positive, negative) literals.
Product = Tuple[FrozenSet[str], FrozenSet[str]]


def _loc(chart: Chart, path: Optional[str],
         line: Optional[int], obj: str) -> SourceLocation:
    return SourceLocation(file=path, line=line, obj=obj)


def _transition_loc(chart: Chart, path: Optional[str],
                    transition: Transition) -> SourceLocation:
    return _loc(chart, path, transition.line,
                f"transition {transition.index}")


def _state_loc(chart: Chart, path: Optional[str], name: str
               ) -> SourceLocation:
    state = chart.states.get(name)
    return _loc(chart, path, state.line if state else None,
                f"state {name!r}")


# ---------------------------------------------------------------------------
# well-formedness (PSC10x) and design smells (PSC15x)
# ---------------------------------------------------------------------------

def wellformedness(chart: Chart, path: Optional[str] = None
                   ) -> List[Diagnostic]:
    """Structural violations; message texts match the legacy string API."""
    out = Collector()
    declared = set(chart.events) | set(chart.conditions)

    for state in chart.states.values():
        location = _state_loc(chart, path, state.name)
        if state.kind is StateKind.OR and state.children:
            default = state.default or state.children[0]
            if default not in state.children:
                out.emit("PSC101",
                         f"OR-state {state.name!r}: default {default!r} "
                         "is not a child",
                         location=location,
                         hint="name one of the contained states as default")
        if state.kind is StateKind.AND and len(state.children) < 2:
            out.emit("PSC102",
                     f"AND-state {state.name!r} has "
                     f"{len(state.children)} region(s); needs at least 2",
                     location=location,
                     hint="an AND state models parallelism; give it two or "
                          "more regions or make it an OR state")
        if state.kind is StateKind.BASIC and state.children:
            out.emit("PSC103",
                     f"basic state {state.name!r} must not contain children",
                     location=location,
                     hint="declare the state as orstate/andstate")
        if state.kind is StateKind.REF:
            if state.ref is None:
                out.emit("PSC104",
                         f"ref state {state.name!r} refers to no chart",
                         location=location)
            if state.children:
                out.emit("PSC105",
                         f"ref state {state.name!r} must not contain "
                         "children",
                         location=location)

    for transition in chart.transitions:
        location = _transition_loc(chart, path, transition)
        for name in sorted(transition.names_consumed()):
            if name not in declared:
                out.emit("PSC106",
                         f"transition {transition.describe()}: "
                         f"undeclared event/condition {name!r}",
                         location=location,
                         hint=f"declare {name!r} as an event or condition")
        if transition.target == chart.root:
            out.emit("PSC107",
                     f"transition {transition.describe()}: "
                     "may not target the root",
                     location=location)

    for event in chart.events.values():
        if event.period is not None and event.period <= 0:
            out.emit("PSC108",
                     f"event {event.name!r}: period must be positive",
                     location=_loc(chart, path, None,
                                   f"event {event.name!r}"))

    for port_name in sorted({e.port for e in chart.events.values()
                             if e.port}):
        if port_name not in chart.ports:
            out.emit("PSC109", f"event port {port_name!r} is not declared",
                     location=_loc(chart, path, None,
                                   f"port {port_name!r}"))
    for port_name in sorted({c.port for c in chart.conditions.values()
                             if c.port}):
        if port_name not in chart.ports:
            out.emit("PSC110",
                     f"condition port {port_name!r} is not declared",
                     location=_loc(chart, path, None,
                                   f"port {port_name!r}"))
    return out.diagnostics


def design_smells(chart: Chart, path: Optional[str] = None
                  ) -> List[Diagnostic]:
    """Non-fatal smells; message texts match the legacy string API."""
    from repro.statechart.graph import reachable_states

    out = Collector()
    reached = reachable_states(chart)
    for state in chart.states.values():
        if state.name not in reached:
            out.emit("PSC150",
                     f"state {state.name!r} is structurally unreachable",
                     location=_state_loc(chart, path, state.name),
                     hint="add a transition into it or delete it; it wastes "
                          "SLA terms and CR bits")

    used = set()
    for transition in chart.transitions:
        used |= transition.names_consumed()
    for name in chart.events:
        if name not in used:
            out.emit("PSC151", f"event {name!r} triggers no transition",
                     location=_loc(chart, path, None, f"event {name!r}"))
    for name in chart.conditions:
        if name not in used:
            out.emit("PSC152", f"condition {name!r} guards no transition",
                     location=_loc(chart, path, None,
                                   f"condition {name!r}"))
    return out.diagnostics


# ---------------------------------------------------------------------------
# enabling conditions as sums of products
# ---------------------------------------------------------------------------

def enable_products(transition: Transition) -> List[Product]:
    """SOP form of ``trigger AND guard`` (``TRUE`` when both are absent)."""
    parts = []
    for expression in (transition.trigger, transition.guard):
        parts.append(expression.to_sop() if expression is not None
                     else [(frozenset(), frozenset())])
    products: List[Product] = []
    for t_pos, t_neg in parts[0]:
        for g_pos, g_neg in parts[1]:
            pos, neg = t_pos | g_pos, t_neg | g_neg
            if pos & neg:
                continue  # contradictory, unsatisfiable
            products.append((pos, neg))
    return products


def jointly_satisfiable(a: Sequence[Product], b: Sequence[Product]) -> bool:
    """Can both enabling conditions hold under one signal assignment?"""
    for a_pos, a_neg in a:
        for b_pos, b_neg in b:
            if not ((a_pos | b_pos) & (a_neg | b_neg)):
                return True
    return False


def covers(winner: Sequence[Product], loser: Sequence[Product]) -> bool:
    """True when every assignment enabling *loser* also enables *winner*.

    Sufficient (product-wise subsumption), not complete — it never claims
    coverage that does not hold.
    """
    if not loser:
        return True  # loser is unsatisfiable outright
    for l_pos, l_neg in loser:
        if not any(w_pos <= l_pos and w_neg <= l_neg
                   for w_pos, w_neg in winner):
            return False
    return True


_RESIDUE_CAP = 256


def union_covers(winners: Sequence[Sequence[Product]],
                 loser: Sequence[Product]) -> bool:
    """True when the *union* of the winners' enabling conditions covers the
    loser — even if no single winner does (e.g. one fires on ``A``, another
    on ``not A``).

    Exact via residues: subtract each winner product from what remains of
    the loser (distributing the complement literal by literal); an empty
    residue means no assignment enables the loser alone.  Gives up (returns
    False, never a false positive) if the residue grows past a cap.
    """
    residue: List[Product] = list(loser)
    for winner in winners:
        for w_pos, w_neg in winner:
            next_residue: List[Product] = []
            for r_pos, r_neg in residue:
                if (r_pos | w_pos) & (r_neg | w_neg):
                    next_residue.append((r_pos, r_neg))
                    continue  # disjoint from w: w removes nothing
                # r AND NOT w  =  OR over w's literals not implied by r,
                # each negated (r ⊆ w leaves no term: fully covered)
                for event in w_pos - r_pos:
                    next_residue.append((r_pos, r_neg | {event}))
                for event in w_neg - r_neg:
                    next_residue.append((r_pos | {event}, r_neg))
            residue = next_residue
            if len(residue) > _RESIDUE_CAP:
                return False
            if not residue:
                return True
    return not residue


# ---------------------------------------------------------------------------
# structural predicates
# ---------------------------------------------------------------------------

def co_occupiable(chart: Chart, a: str, b: str) -> bool:
    """Can states *a* and *b* be part of one configuration?"""
    if a == b or chart.is_ancestor(a, b) or chart.is_ancestor(b, a):
        return True
    return chart.states[chart.lca(a, b)].kind is StateKind.AND


def orthogonal(chart: Chart, a: str, b: str) -> bool:
    """States in different regions of one AND state (both can be active
    and transitions from both fire in the same cycle)."""
    if a == b or chart.is_ancestor(a, b) or chart.is_ancestor(b, a):
        return False
    return chart.states[chart.lca(a, b)].kind is StateKind.AND


def _scopes_related(chart: Chart, s1: str, s2: str) -> bool:
    return (s1 == s2 or chart.is_ancestor(s1, s2)
            or chart.is_ancestor(s2, s1))


# ---------------------------------------------------------------------------
# determinism (PSC201 / PSC202)
# ---------------------------------------------------------------------------

def determinism(chart: Chart, path: Optional[str] = None
                ) -> List[Diagnostic]:
    """Conflicting transition pairs: shadowing errors and priority notes."""
    out = Collector()
    transitions = chart.transitions
    products = {t.index: enable_products(t) for t in transitions}
    scopes = {t.index: chart.transition_scope(t) for t in transitions}

    def priority(t: Transition) -> Tuple[int, int]:
        # mirrors Interpreter.select: outermost scope wins, then order
        return (chart.depth(scopes[t.index]), t.index)

    for i, first in enumerate(transitions):
        for second in transitions[i + 1:]:
            if not _scopes_related(chart, scopes[first.index],
                                   scopes[second.index]):
                continue  # parallel domains; the race pass owns those
            if not co_occupiable(chart, first.source, second.source):
                continue
            if not jointly_satisfiable(products[first.index],
                                       products[second.index]):
                continue
            winner, loser = sorted((first, second), key=priority)
            dominated = (winner.source == loser.source
                         or chart.is_ancestor(winner.source, loser.source))
            if dominated and covers(products[winner.index],
                                    products[loser.index]):
                out.emit(
                    "PSC201",
                    f"transition {loser.describe()} can never fire: "
                    f"{winner.describe()} has priority and its enabling "
                    "condition covers it",
                    location=_transition_loc(chart, path, loser),
                    hint="reorder the transitions or make the triggers/"
                         "guards disjoint")
            else:
                out.emit(
                    "PSC202",
                    f"transitions {winner.describe()} and "
                    f"{loser.describe()} can be enabled together; the "
                    "conflict is resolved by priority (outermost scope, "
                    "then declaration order)",
                    location=_transition_loc(chart, path, loser))

    # union shadowing (PSC205): no single higher-priority transition
    # covers the loser, but two or more together do — e.g. one fires on
    # `A`, another on `not A`.  Product-wise `covers` cannot see it; the
    # exact residue subtraction can.
    for loser in transitions:
        dominators = []
        single_cover = False
        for winner in transitions:
            if priority(winner) >= priority(loser):
                continue
            if not _scopes_related(chart, scopes[winner.index],
                                   scopes[loser.index]):
                continue
            if not co_occupiable(chart, winner.source, loser.source):
                continue
            if not (winner.source == loser.source
                    or chart.is_ancestor(winner.source, loser.source)):
                continue
            if not jointly_satisfiable(products[winner.index],
                                       products[loser.index]):
                continue
            if covers(products[winner.index], products[loser.index]):
                single_cover = True  # PSC201 already owns this loser
                break
            dominators.append(winner)
        if single_cover or len(dominators) < 2:
            continue
        if union_covers([products[w.index] for w in dominators],
                        products[loser.index]):
            names = ", ".join(w.describe() for w in dominators)
            out.emit(
                "PSC205",
                f"transition {loser.describe()} can never fire: the union "
                f"of higher-priority transitions {names} covers its "
                "enabling condition even though none does alone",
                location=_transition_loc(chart, path, loser),
                hint="reorder the transitions or carve out an assignment "
                     "the higher-priority triggers/guards leave enabled")
    return out.diagnostics


# ---------------------------------------------------------------------------
# quiescence (PSC204)
# ---------------------------------------------------------------------------

def quiescence(chart: Chart,
               raised_by: Dict[int, FrozenSet[str]],
               path: Optional[str] = None) -> List[Diagnostic]:
    """Cycles in the trigger-event -> raised-event graph.

    *raised_by* maps transition index -> events its action may ``Raise``
    (computed by the effect analysis).  A cycle means a step can keep
    feeding itself events, so the machine may never return to quiescence
    between external stimuli.
    """
    out = Collector()
    edges: Dict[str, set] = {}
    for transition in chart.transitions:
        raised = raised_by.get(transition.index, frozenset())
        if not raised:
            continue
        positive = set()
        for expression in (transition.trigger, transition.guard):
            if expression is not None:
                pos, _ = expression.polarity_names()
                positive |= pos
        for trigger_event in sorted(positive & set(chart.events)):
            edges.setdefault(trigger_event, set()).update(
                raised & set(chart.events))

    # Tarjan-free SCC detection on a tiny graph: iterative DFS per node
    def reaches(start: str, goal: str) -> bool:
        seen, stack = set(), [start]
        while stack:
            node = stack.pop()
            for successor in sorted(edges.get(node, ())):
                if successor == goal:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    reported = set()
    for event in sorted(edges):
        if event in reported:
            continue
        if event in edges.get(event, ()) or reaches(event, event):
            cycle = sorted({event} | {other for other in edges
                                      if reaches(event, other)
                                      and reaches(other, event)})
            reported.update(cycle)
            out.emit(
                "PSC204",
                f"raised-event cycle through {', '.join(cycle)}: a step "
                "can re-trigger itself, so the chart may never reach "
                "quiescence",
                location=_loc(chart, path, None,
                              f"event {event!r}"),
                hint="break the cycle or bound it with a condition")
    return out.diagnostics
