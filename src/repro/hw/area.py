"""Whole-PSCP area estimation.

A PSCP version is one or more TEPs plus the statechart-specific shared
blocks: the SLA, the Configuration Register, the Transition Address Table,
the overall scheduler and the event/condition bus architecture (Fig. 1).
The shared blocks scale with the *application* (number of product terms, CR
bits, transitions, ports), not with the architecture knobs — exactly why the
paper reports 224 → 421 → 773 CLBs as TEPs grow while the rest stays put.

Calibration targets (Table 4, the SMD pickup-head controller):

=====================================  =====
architecture                           CLBs
=====================================  =====
1 minimal TEP                          224
1 × 16-bit M/D TEP                     421
2 × 16-bit M/D TEPs                    773
=====================================  =====
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.hw.device import Device, XC4025, smallest_fitting
from repro.hw.library import DEFAULT_ROM_WORDS, Component, tep_components
from repro.isa.arch import ArchConfig

# shared-block coefficients (XC4000 CLBs), calibrated with the SMD example
SCHEDULER_CLBS = 12            # configuration-cycle FSM + round-robin dispatch
SLA_CLB_PER_PRODUCT_TERM = 0.7
CR_CLB_PER_BIT = 0.45           # configuration register + sampling logic
TAT_CLB_PER_TRANSITION = 0.5   # transition address table entries
BUS_CLB_PER_PORT = 0.35         # event/condition/data bus drivers per port
MUTEX_DECODE_CLB_PER_PAIR = 2  # extra decode logic per mutual exclusion


@dataclass(frozen=True)
class AppStats:
    """The application-dependent quantities the shared blocks scale with."""

    product_terms: int
    cr_bits: int
    transitions: int
    ports: int

    def __post_init__(self) -> None:
        for name in ("product_terms", "cr_bits", "transitions", "ports"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: the SMD pickup-head controller's statistics (used when estimating without
#: a synthesized SLA at hand)
SMD_APP_STATS = AppStats(product_terms=36, cr_bits=30, transitions=26, ports=14)


@dataclass
class AreaEstimate:
    """A full breakdown, suitable for reports and the floorplanner."""

    arch: ArchConfig
    shared: List[Component]
    per_tep: List[Component]
    n_teps: int

    @property
    def shared_clbs(self) -> int:
        return sum(c.clbs for c in self.shared)

    @property
    def tep_clbs(self) -> int:
        return sum(c.clbs for c in self.per_tep)

    @property
    def total_clbs(self) -> int:
        return self.shared_clbs + self.n_teps * self.tep_clbs

    def blocks(self) -> List[Tuple[str, int]]:
        """(name, clbs) pairs for every placed block (TEPs replicated)."""
        result = [(c.name, c.clbs) for c in self.shared]
        for tep in range(self.n_teps):
            result.extend((f"tep{tep}.{c.name}", c.clbs) for c in self.per_tep)
        return result

    def fits(self, device: Device = XC4025) -> bool:
        return device.fits(self.total_clbs)

    def device(self) -> Device:
        return smallest_fitting(self.total_clbs)

    def report(self) -> str:
        lines = [f"PSCP area estimate — {self.arch.describe()}"]
        lines.append(f"  shared blocks: {self.shared_clbs} CLBs")
        for component in self.shared:
            lines.append(f"    {component.name:24s} {component.clbs:4d}")
        lines.append(f"  per TEP: {self.tep_clbs} CLBs x {self.n_teps}")
        for component in self.per_tep:
            lines.append(f"    {component.name:24s} {component.clbs:4d}")
        lines.append(f"  total: {self.total_clbs} CLBs "
                     f"({self.device().name})")
        return "\n".join(lines)


def shared_components(stats: AppStats, arch: ArchConfig) -> List[Component]:
    """The statechart-specific blocks shared by all TEPs."""
    parts = [
        Component("scheduler", SCHEDULER_CLBS, 9.0, "control"),
        Component("sla",
                  max(1, round(SLA_CLB_PER_PRODUCT_TERM * stats.product_terms)),
                  12.0, "logic"),
        Component("configuration-register",
                  max(1, round(CR_CLB_PER_BIT * stats.cr_bits)),
                  3.0, "register"),
        Component("transition-address-table",
                  max(1, round(TAT_CLB_PER_TRANSITION * stats.transitions)),
                  5.0, "memory"),
        Component("bus-architecture",
                  max(1, round(BUS_CLB_PER_PORT * stats.ports)),
                  4.0, "io"),
    ]
    if arch.mutual_exclusions:
        parts.append(Component(
            "mutex-decode",
            MUTEX_DECODE_CLB_PER_PAIR * len(arch.mutual_exclusions),
            5.0, "control"))
    return parts


def estimate_area(arch: ArchConfig, stats: AppStats = SMD_APP_STATS,
                  rom_words: int = DEFAULT_ROM_WORDS) -> AreaEstimate:
    """Estimate the full PSCP area for *arch* running the *stats* app."""
    return AreaEstimate(
        arch=arch,
        shared=shared_components(stats, arch),
        per_tep=tep_components(arch, rom_words),
        n_teps=arch.n_teps,
    )
