"""The hardware component library (section 3.3).

"The TEP of an application is derived from a library of elements consisting
of hardware building blocks and associated microinstruction sequences.  The
main library elements are calculation units of varying size and
functionality.  There are units with or without associated register files,
and units with or without shifting capabilities.  Several styles of ALUs …
are available.  The library also contains several storage alternatives:
Fast, but more expensive registers, moderately fast and moderately expensive
internal RAM, and slower, but cheaper external RAM."

Every component carries a CLB cost (XC4000 CLBs) and a combinational delay
estimate in nanoseconds.  The per-component coefficients are calibrated once
against Table 4's area column (224 / 421 / 773 CLBs) and kept fixed; they
are plain module constants so the calibration is visible and testable.

Delays matter for two things: the reference clock the timing constraints are
quoted against (15 MHz in the example = 66 ns), and the rule that custom
instructions "do not become the critical paths inside the TEP" — a fused
expression's delay must stay below the base clock period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.isa.arch import ArchConfig, CustomInstruction


@dataclass(frozen=True)
class Component:
    """One library element instance with its cost and delay."""

    name: str
    clbs: int
    delay_ns: float
    kind: str = "logic"

    def __post_init__(self) -> None:
        if self.clbs < 0:
            raise ValueError(f"{self.name}: negative area")


# -- calibrated per-bit / per-unit coefficients (XC4000 CLBs) ----------------
ALU_CLB_PER_BIT = 2.5          # basic add/sub/logic ALU slice
SHIFTER_CLB_PER_BIT = 0.5      # single-bit shifter
BARREL_CLB_PER_BIT = 2.5       # full barrel shifter
MULDIV_CLB_PER_BIT = 8.5       # sequential multiplier/divider + control
COMPARATOR_CLB_PER_BIT = 0.5   # extra comparator for fused compare-branch
NEGATOR_CLB_PER_BIT = 0.5      # two's-complement path
REGISTER_CLB_PER_BIT = 0.75    # one register bit pair per CLB flop pair
RAM_BITS_PER_CLB = 32          # XC4000 CLB-as-RAM
CONTROL_BASE_CLBS = 40         # microprogram sequencer + IR + PC
CONTROL_CLB_PER_ROM_WORD = 0.10  # decoder ROM (16-bit microinstructions)
ADDRESS_LOGIC_CLBS = 14        # address bus mux/drivers
PORT_LOGIC_CLBS = 26           # event/condition/data port interface per TEP
CONDITION_CACHE_CLBS = 8       # per-TEP condition cache + copy logic
SLA_INTERFACE_CLBS = 12        # per-TEP transition registers + SLA handshake
PIPELINE_CLBS = 18             # pipeline registers + hazard/flush control
CUSTOM_CLB_PER_OP_BIT = 0.6    # fused-unit logic per operator per bit

# -- delay coefficients (ns) -------------------------------------------------
LUT_LEVEL_DELAY_NS = 7.0       # one XC4000 logic level incl. routing
CARRY_DELAY_NS_PER_BIT = 1.2   # dedicated carry chain
CONTROL_OVERHEAD_NS = 18.0     # clock-to-out + setup + microcode decode

#: default decoder-ROM size estimate when no application is bound yet
DEFAULT_ROM_WORDS = 120


def alu_delay_ns(width: int) -> float:
    """Adder-dominated ALU delay: one level plus the carry chain."""
    return LUT_LEVEL_DELAY_NS + CARRY_DELAY_NS_PER_BIT * width


def custom_delay_ns(custom: CustomInstruction, width: int) -> float:
    """Delay of a fused unit: one carry chain per depth level."""
    return custom.depth * (LUT_LEVEL_DELAY_NS + CARRY_DELAY_NS_PER_BIT * width)


def clock_period_ns(arch: ArchConfig) -> float:
    """Achievable clock period of a TEP configuration.

    The critical path is the slowest of: the base ALU, the M/D unit's
    iteration step, and any custom instruction's fused logic.
    """
    candidates = [alu_delay_ns(arch.data_width) + CONTROL_OVERHEAD_NS]
    if arch.has_muldiv:
        candidates.append(alu_delay_ns(arch.data_width) + CONTROL_OVERHEAD_NS
                          + LUT_LEVEL_DELAY_NS)
    for custom in arch.custom_instructions:
        candidates.append(custom_delay_ns(custom, arch.data_width)
                          + CONTROL_OVERHEAD_NS)
    return max(candidates)


def max_clock_mhz(arch: ArchConfig) -> float:
    return 1000.0 / clock_period_ns(arch)


def custom_instruction_is_safe(custom: CustomInstruction,
                               arch: ArchConfig) -> bool:
    """Would this fused unit become the TEP's critical path?

    "Care must be taken that such instructions do not become the critical
    paths inside the TEP.  This puts a limit on the size of the expressions
    for which custom instructions may be generated."
    """
    base = alu_delay_ns(arch.data_width) + CONTROL_OVERHEAD_NS
    # tolerate the M/D-style one-extra-level slack
    budget = base + LUT_LEVEL_DELAY_NS
    return custom_delay_ns(custom, arch.data_width) + CONTROL_OVERHEAD_NS <= budget


def tep_components(arch: ArchConfig,
                   rom_words: int = DEFAULT_ROM_WORDS) -> List[Component]:
    """The library elements making up one TEP under *arch*."""
    width = arch.data_width
    parts: List[Component] = []

    def add(name: str, clbs: float, delay: float, kind: str = "logic") -> None:
        parts.append(Component(name, max(1, round(clbs)), delay, kind))

    add("calculation-unit", ALU_CLB_PER_BIT * width, alu_delay_ns(width))
    add("acc-op-registers", REGISTER_CLB_PER_BIT * 2 * width, 2.0, "register")
    add("shifter",
        (BARREL_CLB_PER_BIT if arch.has_barrel_shifter
         else SHIFTER_CLB_PER_BIT) * width,
        LUT_LEVEL_DELAY_NS)
    if arch.has_muldiv:
        add("muldiv-unit", MULDIV_CLB_PER_BIT * width,
            alu_delay_ns(width) + LUT_LEVEL_DELAY_NS)
    if arch.has_comparator:
        add("comparator", COMPARATOR_CLB_PER_BIT * width, LUT_LEVEL_DELAY_NS)
    if arch.has_negator:
        add("negator", NEGATOR_CLB_PER_BIT * width, LUT_LEVEL_DELAY_NS)
    if arch.register_file_size:
        add("register-file",
            REGISTER_CLB_PER_BIT * width * arch.register_file_size,
            2.0, "register")
    for index, custom in enumerate(arch.custom_instructions):
        operators = max(1, custom.depth)
        add(f"custom-unit-{index}",
            CUSTOM_CLB_PER_OP_BIT * operators * width,
            custom_delay_ns(custom, width))
    add("internal-ram",
        arch.internal_ram_words * width / RAM_BITS_PER_CLB,
        6.0, "memory")
    add("microcontrol",
        CONTROL_BASE_CLBS + CONTROL_CLB_PER_ROM_WORD * rom_words,
        LUT_LEVEL_DELAY_NS, "control")
    add("address-logic", ADDRESS_LOGIC_CLBS, LUT_LEVEL_DELAY_NS)
    add("port-interface", PORT_LOGIC_CLBS, LUT_LEVEL_DELAY_NS, "io")
    add("condition-cache", CONDITION_CACHE_CLBS, 2.0, "memory")
    add("sla-interface", SLA_INTERFACE_CLBS, LUT_LEVEL_DELAY_NS)
    if arch.pipelined:
        add("pipeline-registers", PIPELINE_CLBS, 2.0, "register")
    return parts


def tep_area_clbs(arch: ArchConfig,
                  rom_words: int = DEFAULT_ROM_WORDS) -> int:
    """Total CLBs of one TEP under *arch*."""
    return sum(part.clbs for part in tep_components(arch, rom_words))
