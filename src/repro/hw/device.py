"""FPGA device model (Xilinx XC4000 family, per [12] of the paper).

The paper's target platform is FPGA-based; the example fits "on a single
Xilinx XC4025 FPGA, which contains 1024 CLBs" arranged as a 32x32 grid
(Fig. 8).  An XC4000 CLB holds two 4-input LUTs, one 3-input LUT and two
flip-flops, and can alternatively serve as 32x1 bits of RAM — which is how
the area model prices on-chip memories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Device:
    """One FPGA part."""

    name: str
    rows: int
    cols: int

    @property
    def clbs(self) -> int:
        return self.rows * self.cols

    #: usable RAM bits if every CLB were memory (32 bits per CLB)
    @property
    def ram_bits(self) -> int:
        return self.clbs * 32

    def fits(self, clbs: int) -> bool:
        return clbs <= self.clbs

    def utilization(self, clbs: int) -> float:
        return clbs / self.clbs


#: the XC4000 family of the 1994 Programmable Logic Data Book
XC4003 = Device("XC4003", 10, 10)
XC4005 = Device("XC4005", 14, 14)
XC4010 = Device("XC4010", 20, 20)
XC4013 = Device("XC4013", 24, 24)
XC4020 = Device("XC4020", 28, 28)
XC4025 = Device("XC4025", 32, 32)

DEVICES: Dict[str, Device] = {
    d.name: d for d in (XC4003, XC4005, XC4010, XC4013, XC4020, XC4025)
}


def smallest_fitting(clbs: int) -> Device:
    """The smallest family member that fits a design of *clbs* CLBs."""
    for device in sorted(DEVICES.values(), key=lambda d: d.clbs):
        if device.fits(clbs):
            return device
    raise ValueError(
        f"design of {clbs} CLBs exceeds the largest XC4000 device "
        f"({XC4025.name}, {XC4025.clbs} CLBs)")
