"""Hardware modelling: component library, FPGA devices, area, floorplan,
VHDL emission.

Public API::

    from repro.hw import estimate_area, floorplan, XC4025, tep_components
"""

from repro.hw.area import (
    AppStats,
    AreaEstimate,
    SMD_APP_STATS,
    estimate_area,
    shared_components,
)
from repro.hw.device import (
    DEVICES,
    Device,
    XC4003,
    XC4005,
    XC4010,
    XC4013,
    XC4020,
    XC4025,
    smallest_fitting,
)
from repro.hw.floorplan import Floorplan, FloorplanError, Placement, floorplan
from repro.hw.library import (
    Component,
    DEFAULT_ROM_WORDS,
    alu_delay_ns,
    clock_period_ns,
    custom_delay_ns,
    custom_instruction_is_safe,
    max_clock_mhz,
    tep_area_clbs,
    tep_components,
)
from repro.hw.vhdl import emit_decoder_rom_vhdl, emit_pscp_skeleton, emit_sla_vhdl

__all__ = [
    "AppStats", "AreaEstimate", "Component", "DEFAULT_ROM_WORDS", "DEVICES",
    "Device", "Floorplan", "FloorplanError", "Placement", "SMD_APP_STATS",
    "XC4003", "XC4005", "XC4010", "XC4013", "XC4020", "XC4025",
    "alu_delay_ns", "clock_period_ns", "custom_delay_ns",
    "custom_instruction_is_safe", "emit_decoder_rom_vhdl",
    "emit_pscp_skeleton", "emit_sla_vhdl", "estimate_area", "floorplan",
    "max_clock_mhz", "shared_components", "smallest_fitting",
    "tep_area_clbs", "tep_components",
]
