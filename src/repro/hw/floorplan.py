"""Floorplanning on the CLB grid (Fig. 8).

Fig. 8 of the paper shows the placed PSCP on the XC4025's 32x32 CLB array.
We reproduce the *structure* of that result with a deterministic shelf
(strip-packing) floorplanner: blocks are sorted by size and placed left to
right on horizontal shelves, each block as a near-square rectangle of CLBs.
The output is the block placement plus an ASCII rendering of the occupancy
map — the closest textual equivalent of the figure.
"""

from __future__ import annotations

import math
import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.area import AreaEstimate
from repro.hw.device import Device, XC4025


class FloorplanError(Exception):
    """Raised when a design does not fit on the device."""


@dataclass(frozen=True)
class Placement:
    """One placed block: an axis-aligned rectangle of CLBs."""

    name: str
    col: int
    row: int
    width: int
    height: int

    @property
    def clbs(self) -> int:
        return self.width * self.height

    def cells(self):
        for r in range(self.row, self.row + self.height):
            for c in range(self.col, self.col + self.width):
                yield r, c


def _rectangle_for(clbs: int, max_width: int) -> Tuple[int, int]:
    """A near-square width x height covering at least *clbs* cells."""
    width = min(max_width, max(1, math.isqrt(clbs)))
    height = math.ceil(clbs / width)
    return width, height


@dataclass
class Floorplan:
    device: Device
    placements: List[Placement] = field(default_factory=list)

    @property
    def used_clbs(self) -> int:
        return sum(p.clbs for p in self.placements)

    @property
    def utilization(self) -> float:
        return self.used_clbs / self.device.clbs

    def overlaps(self) -> List[Tuple[str, str]]:
        """Pairs of blocks whose rectangles overlap (must be empty)."""
        occupied: Dict[Tuple[int, int], str] = {}
        clashes = []
        for placement in self.placements:
            for cell in placement.cells():
                if cell in occupied:
                    clashes.append((occupied[cell], placement.name))
                else:
                    occupied[cell] = placement.name
        return sorted(set(clashes))

    def in_bounds(self) -> bool:
        return all(p.col >= 0 and p.row >= 0
                   and p.col + p.width <= self.device.cols
                   and p.row + p.height <= self.device.rows
                   for p in self.placements)

    def ascii_map(self) -> str:
        """Fig. 8 as ASCII: one character per CLB, '.' for unused."""
        symbols = string.ascii_uppercase + string.ascii_lowercase + string.digits
        grid = [["." for _ in range(self.device.cols)]
                for _ in range(self.device.rows)]
        legend = []
        for index, placement in enumerate(self.placements):
            symbol = symbols[index % len(symbols)]
            legend.append(f"  {symbol} = {placement.name} "
                          f"({placement.clbs} CLBs)")
            for row, col in placement.cells():
                grid[row][col] = symbol
        header = (f"{self.device.name} floorplan — "
                  f"{self.used_clbs}/{self.device.clbs} CLBs "
                  f"({self.utilization:.0%})")
        body = "\n".join("".join(row) for row in grid)
        return header + "\n" + body + "\n" + "\n".join(legend)


def floorplan(estimate: AreaEstimate,
              device: Device = XC4025) -> Floorplan:
    """Place every block of *estimate* on *device* with shelf packing.

    Blocks are placed largest-first; each shelf is as tall as its tallest
    block.  Raises :class:`FloorplanError` when the design does not fit
    (more faithful than silently overflowing — the paper's flow would fail
    P&R the same way).
    """
    if not estimate.fits(device):
        raise FloorplanError(
            f"{estimate.total_clbs} CLBs exceed {device.name} "
            f"({device.clbs} CLBs)")
    blocks = sorted(estimate.blocks(), key=lambda b: b[1], reverse=True)
    plan = Floorplan(device)
    shelf_row = 0
    shelf_height = 0
    cursor_col = 0
    for name, clbs in blocks:
        width, height = _rectangle_for(clbs, device.cols)
        if cursor_col + width > device.cols:
            shelf_row += shelf_height
            shelf_height = 0
            cursor_col = 0
        if shelf_row + height > device.rows:
            # try a fresh shelf with reduced width to squeeze the tail
            raise FloorplanError(
                f"shelf packing overflowed placing {name!r} "
                f"({clbs} CLBs) on {device.name}")
        plan.placements.append(Placement(name, cursor_col, shelf_row,
                                         width, height))
        cursor_col += width
        shelf_height = max(shelf_height, height)
    return plan
