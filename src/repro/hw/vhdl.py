"""VHDL emission.

Section 2: "The BLIF description is converted to VHDL, and can be
immediately synthesized. […] three formats to represent hardware (PSCP macro
blocks, schematics, and VHDL)."  This module emits synthesizable-style VHDL
for the two generated hardware pieces:

* the SLA as a two-level (PLA) process over the Configuration Register;
* the microprogram decoder ROM as a constant array;
* a structural TEP/PSCP top-level skeleton instantiating the macro blocks.

The emitted text is meant to be read (and diffed in tests); no VHDL
simulator is involved — the functional reference for the SLA is the PLA
evaluator in :mod:`repro.sla.blif`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.isa.arch import ArchConfig
from repro.isa.microcode import DecoderRom


def _entity(name: str, ports: Sequence[Tuple[str, str, str]]) -> List[str]:
    lines = [f"entity {name} is", "  port ("]
    decls = [f"    {pname} : {direction} {ptype}"
             for pname, direction, ptype in ports]
    lines.append(";\n".join(decls))
    lines.append("  );")
    lines.append(f"end entity {name};")
    return lines


def emit_sla_vhdl(name: str,
                  inputs: Sequence[str],
                  outputs: Sequence[str],
                  products: Dict[str, List[Tuple[Sequence[str], Sequence[str]]]]
                  ) -> str:
    """Emit the SLA PLA as VHDL.

    ``products`` maps each output name to its product terms; a term is a
    (positive literals, negated literals) pair over the input names.
    """
    lines = ["library ieee;", "use ieee.std_logic_1164.all;", ""]
    ports = [(p, "in", "std_logic") for p in inputs]
    ports += [(p, "out", "std_logic") for p in outputs]
    lines += _entity(name, ports)
    lines += ["", f"architecture pla of {name} is", "begin"]
    for output in outputs:
        terms = products.get(output, [])
        if not terms:
            lines.append(f"  {output} <= '0';")
            continue
        rendered = []
        for positive, negated in terms:
            literals = [f"{p} = '1'" for p in positive]
            literals += [f"{n} = '0'" for n in negated]
            rendered.append("(" + " and ".join(literals) + ")" if literals
                            else "true")
        condition = "\n      or ".join(rendered)
        lines.append(f"  {output} <= '1' when {condition}\n"
                     f"      else '0';")
    lines += [f"end architecture pla;", ""]
    return "\n".join(lines)


def emit_decoder_rom_vhdl(rom: DecoderRom, name: str = "microdecoder") -> str:
    """The application-specific microprogram decoder as a VHDL ROM."""
    lines = ["library ieee;", "use ieee.std_logic_1164.all;",
             "use ieee.numeric_std.all;", ""]
    lines += _entity(name, [
        ("uaddr", "in", "unsigned(7 downto 0)"),
        ("uword", "out", "std_logic_vector(15 downto 0)"),
    ])
    lines += ["", f"architecture rom of {name} is",
              "  type rom_t is array (natural range <>) of "
              "std_logic_vector(15 downto 0);",
              "  constant CONTENTS : rom_t := ("]
    if rom.words:
        body = ",\n".join(f'    x"{word:04x}"' for word in rom.words)
        lines.append(body)
    else:
        lines.append('    x"0000"')
    lines += ["  );", "begin",
              "  uword <= CONTENTS(to_integer(uaddr)) "
              "when to_integer(uaddr) < CONTENTS'length",
              '           else x"0000";',
              f"end architecture rom;", ""]
    return "\n".join(lines)


def emit_pscp_skeleton(arch: ArchConfig, name: str = "pscp") -> str:
    """Structural top level: SLA + CR + scheduler + n TEP instances."""
    width = arch.data_width
    lines = ["library ieee;", "use ieee.std_logic_1164.all;", ""]
    lines += _entity(name, [
        ("clk", "in", "std_logic"),
        ("reset", "in", "std_logic"),
        ("event_bus", "in", "std_logic_vector(15 downto 0)"),
        ("condition_bus", "inout", "std_logic_vector(15 downto 0)"),
        (f"data_bus", "inout", f"std_logic_vector({width - 1} downto 0)"),
    ])
    lines += ["", f"architecture structure of {name} is", "begin",
              "  u_sla : entity work.sla;",
              "  u_cr : entity work.configuration_register;",
              "  u_scheduler : entity work.scheduler;",
              "  u_tat : entity work.transition_address_table;"]
    for index in range(arch.n_teps):
        lines.append(f"  u_tep{index} : entity work.tep "
                     f"generic map (WIDTH => {width});")
    lines += [f"end architecture structure;", ""]
    return "\n".join(lines)
