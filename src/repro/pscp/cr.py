"""The Configuration Register at run time.

"The state information, together with the encoded events and conditions,
forms the configuration register (CR) of the chart.  Its content describes
the current state of an application."

The runtime object keeps the symbolic view (event/condition/state sets) and
produces the packed bit vector for the SLA on demand; both views are kept
consistent through the :class:`~repro.sla.encode.CrLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Set

from repro.sla.encode import CrLayout


class ConfigurationRegister:
    """Events, conditions and the state field, with CR-bit packing."""

    def __init__(self, layout: CrLayout) -> None:
        self.layout = layout
        chart = layout.chart
        self.events: Set[str] = set()
        self.conditions: Set[str] = {
            name for name, condition in chart.conditions.items()
            if condition.initial}
        self.configuration: FrozenSet[str] = chart.initial_configuration()

    # -- event part ---------------------------------------------------------
    def sample_events(self, external: Iterable[str],
                      internal: Iterable[str]) -> None:
        """Start of a configuration cycle: load this cycle's events."""
        chart = self.layout.chart
        events = set(external) | set(internal)
        unknown = events - set(chart.events)
        if unknown:
            raise KeyError(f"unknown events {sorted(unknown)!r}")
        self.events = events

    def reset_events(self) -> None:
        """End of cycle: "events are only available during a single system
        cycle" — the SLA resets the event part of the CR."""
        self.events = set()

    # -- condition part --------------------------------------------------------
    def condition_vector(self) -> Dict[str, bool]:
        return {name: name in self.conditions
                for name in self.layout.chart.conditions}

    def write_conditions(self, values: Dict[str, bool]) -> None:
        for name, value in values.items():
            if name not in self.layout.chart.conditions:
                raise KeyError(f"unknown condition {name!r}")
            if value:
                self.conditions.add(name)
            else:
                self.conditions.discard(name)

    # -- fault-injection hooks ------------------------------------------------
    def flip_event(self, name: str) -> bool:
        """Single-bit upset in the event part; returns the new presence."""
        if name not in self.layout.chart.events:
            raise KeyError(f"unknown event {name!r}")
        if name in self.events:
            self.events.discard(name)
            return False
        self.events.add(name)
        return True

    def flip_condition(self, name: str) -> bool:
        """Single-bit upset in the condition part; returns the new presence."""
        if name not in self.layout.chart.conditions:
            raise KeyError(f"unknown condition {name!r}")
        if name in self.conditions:
            self.conditions.discard(name)
            return False
        self.conditions.add(name)
        return True

    def corrupt_state_bit(self, bit: int) -> FrozenSet[str]:
        """Single-bit upset in the state part.

        Re-decodes the corrupted state word, so the resulting configuration
        may be illegal (an OR-selector pointing at an unused code point) —
        exactly what the guard's exclusivity checker exists to catch.
        Returns the new configuration."""
        encoding = self.layout.encoding
        bits = encoding.encode(self.configuration) ^ (1 << bit)
        self.configuration = frozenset(encoding.active_states(bits))
        return self.configuration

    # -- state part ----------------------------------------------------------
    def update_states(self, exited: Iterable[str],
                      entered: Iterable[str]) -> None:
        configuration = set(self.configuration)
        configuration -= set(exited)
        configuration |= set(entered)
        self.configuration = frozenset(configuration)

    # -- packed view -----------------------------------------------------------
    @property
    def bits(self) -> int:
        return self.layout.pack(self.events, self.conditions,
                                self.configuration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CR(events={sorted(self.events)}, "
                f"conditions={sorted(self.conditions)}, "
                f"states={sorted(self.configuration)})")
