"""The complete PSCP machine (Fig. 1).

Assembles the synthesized SLA, the Configuration Register, the Transition
Address Table, the scheduler and the TEP(s) executing compiled transition
routines into one steppable machine:

1. at the start of a configuration cycle, external events (plus events the
   TEPs raised last cycle) are sampled into the CR;
2. the SLA (the synthesized PLA, guard signals applied) produces the enabled
   transition addresses into the TAT;
3. the scheduler copies the CR's condition part into the condition caches
   and dispatches the transitions round-robin to the TEPs; each transition
   stub marshals its action's constant arguments and calls the compiled
   routine; at the end the cache is copied back to the CR;
4. state updates are applied, the event part of the CR is reset, and the
   cycle's length (in reference-clock cycles) is the scheduler overhead plus
   the makespan of the TEP queues.

Execution of routines is sequential and deterministic (index order);
parallelism across TEPs is a timing model — see
:mod:`repro.pscp.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.isa.arch import ArchConfig
from repro.isa.codegen import CompiledProgram
from repro.isa.isa import Imm, Instruction, LabelRef, Op
from repro.isa.microcode import cycle_cost
from repro.pscp.cr import ConfigurationRegister
from repro.pscp.ports import PortBus
from repro.pscp.scheduler import (
    DISPATCH_OVERHEAD_CYCLES,
    SLA_OVERHEAD_CYCLES,
    DispatchPlan,
    round_robin_dispatch,
)
from repro.pscp.tep import Tep
from repro.sla.synth import Pla, synthesize
from repro.sla.table import TransitionAddressTable
from repro.statechart.labels import action_arguments, action_routine_name
from repro.statechart.model import Chart, Transition


class MachineError(Exception):
    """Raised for construction or stepping problems."""


# ---------------------------------------------------------------------------
# transition stubs
# ---------------------------------------------------------------------------

def _resolve_argument(argument: str, compiled: CompiledProgram) -> int:
    argument = argument.strip()
    if argument in compiled.enum_values:
        return compiled.enum_values[argument]
    try:
        if argument.lower().startswith("0x"):
            return int(argument, 16)
        if argument.lower().startswith("b:"):
            return int(argument[2:], 2)
        return int(argument)
    except ValueError:
        raise MachineError(
            f"cannot resolve action argument {argument!r}: transition label "
            "arguments must be integers or enum members") from None


def _builtin_stub_body(routine: str, transition, compiled: CompiledProgram):
    """Builtin actions in labels (``SetTrue(XFINISH)`` — Fig. 5) compile to
    a single CR/cache instruction in the stub, no routine call needed."""
    from repro.isa.isa import SignalRef

    ops = {"SetTrue": Op.CSET, "SetFalse": Op.CCLR, "Raise": Op.EVSET}
    if routine not in ops:
        return None
    arguments = action_arguments(transition.action)
    if len(arguments) != 1:
        raise MachineError(
            f"transition {transition.describe()}: {routine} takes one name")
    name = arguments[0]
    pool = (compiled.maps.events if routine == "Raise"
            else compiled.maps.conditions)
    if name not in pool:
        raise MachineError(
            f"transition {transition.describe()}: unknown "
            f"{'event' if routine == 'Raise' else 'condition'} {name!r}")
    return [Instruction(ops[routine], SignalRef(pool[name], name),
                        comment=transition.action)]


# ---------------------------------------------------------------------------
# the machine
# ---------------------------------------------------------------------------

@dataclass
class MachineStep:
    """What one configuration cycle did."""

    fired: List[Transition]
    configuration: FrozenSet[str]
    cycle_length: int
    start_time: int
    end_time: int
    plan: Optional[DispatchPlan]
    events_sampled: FrozenSet[str]
    events_raised: FrozenSet[str]

    @property
    def quiescent(self) -> bool:
        return not self.fired


class PscpMachine:
    """SLA + CR + scheduler + TAT + TEP(s) + compiled routines."""

    def __init__(
        self,
        chart: Chart,
        compiled: CompiledProgram,
        pla: Optional[Pla] = None,
        port_bus: Optional[PortBus] = None,
        param_names: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        self.chart = chart
        self.compiled = compiled
        self.arch = compiled.arch
        self.pla = pla if pla is not None else synthesize(chart)
        self.cr = ConfigurationRegister(self.pla.layout)
        self.ports = port_bus if port_bus is not None else PortBus()
        self.tat = TransitionAddressTable()
        self._param_names = param_names or {}

        stub_instructions, entries = self._build_stubs()
        program = compiled.flat_instructions() + stub_instructions
        for index, label in entries.items():
            self.tat.bind(index, label)
        #: single executor with shared memory; see scheduler docstring
        self.executor = Tep(self.arch, program, ports=self.ports,
                            name="tep-shared")
        self.executor.load_memory(compiled.allocator.initial_values)
        self._pending_internal_events: Set[str] = set()
        self.time = 0
        self.cycle_count = 0
        self.history: List[MachineStep] = []

    # -- construction helpers ------------------------------------------------
    def _build_stubs(self):
        return build_transition_stubs(
            self.chart, self.compiled, self._param_names or None)

    # -- stepping ----------------------------------------------------------------
    def step(self, external_events: Iterable[str] = ()) -> MachineStep:
        """Run one configuration cycle."""
        external = set(external_events)
        unknown = external - set(self.chart.events)
        if unknown:
            raise MachineError(f"unknown external events {sorted(unknown)!r}")
        internal = self._pending_internal_events
        self._pending_internal_events = set()
        self.cr.sample_events(external, internal)
        sampled = frozenset(self.cr.events)

        enabled = self.pla.enabled(self.cr.bits)
        self.tat.post(enabled)

        transitions = [self.chart.transitions[i] for i in enabled]
        plan = round_robin_dispatch(
            enabled, self._routine_of, self.arch) if enabled else None

        costs: Dict[int, int] = {}
        raised_names: Set[str] = set()
        event_index_to_name = {index: name for name, index
                               in self.compiled.maps.events.items()}
        condition_index_to_name = {index: name for name, index
                                   in self.compiled.maps.conditions.items()}

        while not self.tat.empty:
            index = self.tat.pop()
            assert index is not None
            # condition cache copy-in
            for name, value in self.cr.condition_vector().items():
                cache_index = self.compiled.maps.conditions.get(name)
                if cache_index is not None:
                    self.executor.condition_cache[cache_index] = value
            self.executor.events_raised = set()
            costs[index] = self.executor.run(self.tat.entry(index))
            # condition cache copy-back
            updates = {}
            for cache_index, name in condition_index_to_name.items():
                updates[name] = self.executor.condition_cache[cache_index]
            self.cr.write_conditions(updates)
            for event_index in self.executor.events_raised:
                name = event_index_to_name.get(event_index)
                if name is None:
                    raise MachineError(
                        f"routine raised unknown event index {event_index}")
                raised_names.add(name)

        # state update (same per-transition order as the interpreter)
        configuration = set(self.cr.configuration)
        for transition in transitions:
            exited = self.chart.exit_set(transition, frozenset(configuration))
            entered = self.chart.entry_set(transition)
            configuration -= exited
            configuration |= entered
        self.cr.configuration = frozenset(configuration)

        self.cr.reset_events()
        self._pending_internal_events |= raised_names

        makespan = plan.makespan(lambda i: costs[i]) if plan else 0
        cycle_length = SLA_OVERHEAD_CYCLES + makespan
        step = MachineStep(
            fired=transitions,
            configuration=self.cr.configuration,
            cycle_length=cycle_length,
            start_time=self.time,
            end_time=self.time + cycle_length,
            plan=plan,
            events_sampled=sampled,
            events_raised=frozenset(raised_names),
        )
        self.time += cycle_length
        self.cycle_count += 1
        self.history.append(step)
        return step

    def run(self, traces: Iterable[Iterable[str]]) -> List[MachineStep]:
        return [self.step(events) for events in traces]

    def _routine_of(self, transition_index: int) -> Optional[str]:
        transition = self.chart.transitions[transition_index]
        if not transition.action:
            return None
        return action_routine_name(transition.action)

    # -- convenience ------------------------------------------------------------
    def condition(self, name: str) -> bool:
        return name in self.cr.conditions

    def in_state(self, name: str) -> bool:
        return name in self.cr.configuration

    def read_global(self, name: str) -> int:
        loc = self.compiled.allocator.locations[name]
        return self.executor.read_variable(loc)

    def write_global(self, name: str, value: int) -> None:
        loc = self.compiled.allocator.locations[name]
        self.executor.write_variable(loc, value)


def build_transition_stubs(
    chart: Chart,
    compiled: CompiledProgram,
    param_names: Optional[Dict[str, List[str]]],
) -> Tuple[List[Instruction], Dict[int, str]]:
    """Stub generation with explicit per-routine parameter name lists.

    ``param_names`` maps routine name to its parameter names in order; when
    ``None`` it is recovered from the compiled objects' cost trees is not
    possible, so the caller (the flow) should pass it — the fallback assumes
    parameterless routines only and raises otherwise.
    """
    instructions: List[Instruction] = []
    entries: Dict[int, str] = {}
    arch = compiled.arch
    for transition in chart.transitions:
        label = f"__t{transition.index}"
        entries[transition.index] = label
        body: List[Instruction] = []
        if transition.action:
            routine = action_routine_name(transition.action)
            builtin = _builtin_stub_body(routine, transition, compiled)
            if builtin is not None:
                body.extend(builtin)
                body.append(Instruction(Op.TRET, comment=transition.describe()))
                body[0] = body[0].with_label(label)
                instructions.extend(body)
                continue
            if routine not in compiled.objects:
                raise MachineError(
                    f"transition {transition.describe()}: routine "
                    f"{routine!r} was not compiled")
            arguments = action_arguments(transition.action)
            if param_names is not None:
                params = param_names.get(routine, [])
            elif arguments:
                raise MachineError(
                    f"transition {transition.describe()}: parameter names "
                    f"for {routine!r} are required to marshal arguments")
            else:
                params = []
            if len(arguments) != len(params):
                raise MachineError(
                    f"transition {transition.describe()}: {routine} takes "
                    f"{len(params)} argument(s), label passes "
                    f"{len(arguments)}")
            mask = (1 << arch.data_width) - 1
            for argument, param_name in zip(arguments, params):
                value = _resolve_argument(argument, compiled)
                loc = compiled.allocator.locations[f"{routine}.{param_name}"]
                for word_index, operand in enumerate(loc.words):
                    word = (value >> (word_index * arch.data_width)) & mask
                    body.append(Instruction(Op.LDA, Imm(word)))
                    body.append(Instruction(Op.STA, operand))
            body.append(Instruction(Op.CALL, LabelRef(routine),
                                    comment=transition.action))
        body.append(Instruction(Op.TRET, comment=transition.describe()))
        body[0] = body[0].with_label(label)
        instructions.extend(body)
    return instructions, entries


def stub_wcet(transition: Transition, compiled: CompiledProgram,
              param_names: Optional[Dict[str, List[str]]] = None) -> int:
    """Static worst-case cycles of one transition's stub + routine.

    This is the per-transition quantity the timing validator sums along
    event cycles (plus the scheduler's dispatch overhead).
    """
    arch = compiled.arch
    wcets = compiled.wcets()
    if transition.wcet_override is not None:
        # "otherwise explicit timing constraints must be specified"
        return transition.wcet_override
    total = cycle_cost(Instruction(Op.TRET), arch)
    if transition.action:
        routine = action_routine_name(transition.action)
        if routine in ("SetTrue", "SetFalse", "Raise"):
            from repro.isa.isa import SignalRef
            op = {"SetTrue": Op.CSET, "SetFalse": Op.CCLR,
                  "Raise": Op.EVSET}[routine]
            return total + cycle_cost(Instruction(op, SignalRef(0)), arch)
        arguments = action_arguments(transition.action)
        params = (param_names or {}).get(routine, [""] * len(arguments))
        for argument, param_name in zip(arguments, params):
            key = f"{routine}.{param_name}"
            if key in compiled.allocator.locations:
                loc = compiled.allocator.locations[key]
                for word_index in range(loc.n_words):
                    total += cycle_cost(Instruction(Op.LDA, Imm(0)), arch)
                    total += cycle_cost(
                        Instruction(Op.STA, loc.word(word_index)), arch)
        total += cycle_cost(Instruction(Op.CALL, LabelRef(routine)), arch)
        total += wcets[routine]
    return total
