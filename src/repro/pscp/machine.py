"""The complete PSCP machine (Fig. 1).

Assembles the synthesized SLA, the Configuration Register, the Transition
Address Table, the scheduler and the TEP(s) executing compiled transition
routines into one steppable machine:

1. at the start of a configuration cycle, external events (plus events the
   TEPs raised last cycle) are sampled into the CR;
2. the SLA (the synthesized PLA, guard signals applied) produces the enabled
   transition addresses into the TAT;
3. the scheduler copies the CR's condition part into the condition caches
   and dispatches the transitions round-robin to the TEPs; each transition
   stub marshals its action's constant arguments and calls the compiled
   routine; at the end the cache is copied back to the CR;
4. state updates are applied, the event part of the CR is reset, and the
   cycle's length (in reference-clock cycles) is the scheduler overhead plus
   the makespan of the TEP queues.

Execution of routines is sequential and deterministic (index order);
parallelism across TEPs is a timing model — see
:mod:`repro.pscp.scheduler`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.isa.arch import ArchConfig
from repro.isa.codegen import CompiledProgram
from repro.isa.isa import Imm, Instruction, LabelRef, Op
from repro.isa.microcode import cycle_cost
from repro.pscp.condcache import ConditionCacheBridge
from repro.pscp.cr import ConfigurationRegister
from repro.pscp.ports import PortBus
from repro.pscp.scheduler import (
    DISPATCH_OVERHEAD_CYCLES,
    SLA_OVERHEAD_CYCLES,
    DispatchPlan,
    round_robin_dispatch,
)
from repro.pscp.tep import Tep
from repro.sla.synth import Pla, synthesize
from repro.sla.table import TransitionAddressTable
from repro.statechart.labels import action_arguments, action_routine_name
from repro.statechart.model import Chart, Transition


class MachineError(Exception):
    """Raised for construction or stepping problems."""


# ---------------------------------------------------------------------------
# transition stubs
# ---------------------------------------------------------------------------

def _resolve_argument(argument: str, compiled: CompiledProgram) -> int:
    argument = argument.strip()
    if argument in compiled.enum_values:
        return compiled.enum_values[argument]
    try:
        if argument.lower().startswith("0x"):
            return int(argument, 16)
        if argument.lower().startswith("b:"):
            return int(argument[2:], 2)
        return int(argument)
    except ValueError:
        raise MachineError(
            f"cannot resolve action argument {argument!r}: transition label "
            "arguments must be integers or enum members") from None


def _builtin_stub_body(routine: str, transition, compiled: CompiledProgram):
    """Builtin actions in labels (``SetTrue(XFINISH)`` — Fig. 5) compile to
    a single CR/cache instruction in the stub, no routine call needed."""
    from repro.isa.isa import SignalRef

    ops = {"SetTrue": Op.CSET, "SetFalse": Op.CCLR, "Raise": Op.EVSET}
    if routine not in ops:
        return None
    arguments = action_arguments(transition.action)
    if len(arguments) != 1:
        raise MachineError(
            f"transition {transition.describe()}: {routine} takes one name")
    name = arguments[0]
    pool = (compiled.maps.events if routine == "Raise"
            else compiled.maps.conditions)
    if name not in pool:
        raise MachineError(
            f"transition {transition.describe()}: unknown "
            f"{'event' if routine == 'Raise' else 'condition'} {name!r}")
    return [Instruction(ops[routine], SignalRef(pool[name], name),
                        comment=transition.action)]


# ---------------------------------------------------------------------------
# the machine
# ---------------------------------------------------------------------------

@dataclass
class MachineStep:
    """What one configuration cycle did."""

    fired: List[Transition]
    configuration: FrozenSet[str]
    cycle_length: int
    start_time: int
    end_time: int
    plan: Optional[DispatchPlan]
    events_sampled: FrozenSet[str]
    events_raised: FrozenSet[str]
    #: faults that bit this cycle (injector attached) and detections the
    #: guard recorded; both stay ``()`` on the fault-free path so an
    #: empty-plan run is indistinguishable from a no-injector run
    faults: Tuple = ()
    recoveries: Tuple = ()

    @property
    def quiescent(self) -> bool:
        return not self.fired


class PscpMachine:
    """SLA + CR + scheduler + TAT + TEP(s) + compiled routines."""

    def __init__(
        self,
        chart: Chart,
        compiled: CompiledProgram,
        pla: Optional[Pla] = None,
        port_bus: Optional[PortBus] = None,
        param_names: Optional[Dict[str, List[str]]] = None,
        keep_history: bool = True,
        history_limit: Optional[int] = None,
    ) -> None:
        self.chart = chart
        self.compiled = compiled
        self.arch = compiled.arch
        self.pla = pla if pla is not None else synthesize(chart)
        self.cr = ConfigurationRegister(self.pla.layout)
        self.ports = port_bus if port_bus is not None else PortBus()
        self.tat = TransitionAddressTable()
        self._param_names = param_names or {}

        stub_instructions, entries = self._build_stubs()
        program = compiled.flat_instructions() + stub_instructions
        for index, label in entries.items():
            self.tat.bind(index, label)
        #: single executor with shared memory; see scheduler docstring
        self.executor = Tep(self.arch, program, ports=self.ports,
                            name="tep-shared")
        self.executor.load_memory(compiled.allocator.initial_values)
        self.cond_cache_bridge = ConditionCacheBridge(
            self.compiled.maps.conditions)
        self._event_index_to_name = {index: name for name, index
                                     in self.compiled.maps.events.items()}
        self._pending_internal_events: Set[str] = set()
        self.time = 0
        self.cycle_count = 0
        #: step records; a ring buffer when *history_limit* is set, nothing
        #: at all when *keep_history* is false (attach a tracer to keep a
        #: durable record of long runs without linear memory growth)
        self._keep_history = keep_history or history_limit is not None
        self.history = (deque(maxlen=history_limit)
                        if history_limit is not None else [])
        #: observability: ``None`` keeps every hook a no-op guard
        self.tracer = None
        #: hot-path profiler (:class:`repro.obs.perfprof.PerfProfiler`);
        #: ``None`` keeps every phase mark a no-op guard
        self.profiler = None
        self._tr_machine = self._tr_sla = self._tr_sched = self._tr_bus = 0
        self._tr_teps: List[int] = []
        self._span_names: Dict[int, str] = {}
        self._idle_start: Optional[int] = None
        self._idle_cycles = 0
        #: fault injection / recovery: ``None`` keeps every hook a no-op
        #: guard, same zero-overhead pattern as the tracer
        self.injector = None
        self.guard = None
        #: always-on forensics: ``None`` keeps the hook a no-op guard; an
        #: attached :class:`repro.obs.FlightRecorder` costs one tuple
        #: append per cycle (enforced by ``scripts/check_overhead.py``)
        self.recorder = None
        #: causal lineage: ``None`` keeps every hook a no-op guard; an
        #: attached :class:`repro.obs.LineageTracker` appends compact hop
        #: tuples (digested lazily at query time, never here)
        self.lineage = None
        self.failed_teps: Set[int] = set()
        #: ``None`` until a TEP fails; then the surviving TEP indices the
        #: scheduler round-robins over
        self._available_teps: Optional[List[int]] = None

    # -- observability -----------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Start tracing into *tracer* (a :class:`repro.obs.Tracer`).

        Track ids and per-transition span names are pre-computed here so the
        per-cycle hot path does no string formatting.  Pass ``None`` to
        detach and restore the zero-overhead disabled path.
        """
        previous = self.tracer
        if previous is not None:
            self._flush_idle(previous)
        self.tracer = tracer
        self._idle_start = None
        self._idle_cycles = 0
        if tracer is None:
            return
        self._tr_machine = tracer.track("machine")
        self._tr_sla = tracer.track("SLA")
        self._tr_sched = tracer.track("scheduler")
        self._tr_teps = [tracer.track(f"TEP {index}")
                         for index in range(self.arch.n_teps)]
        self._tr_bus = tracer.track("cond-cache bus")
        self._span_names = {}
        for transition in self.chart.transitions:
            routine = (action_routine_name(transition.action)
                       if transition.action else "(no action)")
            self._span_names[transition.index] = (
                f"t{transition.index} {routine}")
        tracer.metadata.setdefault("architecture", self.arch.describe())
        tracer.metadata.setdefault("chart", self.chart.name)
        if self.injector is not None:
            self.injector.attach_tracer(tracer)
        if self.guard is not None:
            self.guard.attach_tracer(tracer)

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.obs.PerfProfiler`: every ``step()``
        attributes its host wall time across the five step phases, and the
        executor attributes dispatched-routine (and, at the ``opcode``
        level, per-instruction) time.  Pass ``None`` to detach and restore
        the zero-overhead disabled path.  The profiler observes only: the
        simulated cycle counts and ``MachineStep`` stream are identical
        with and without it.
        """
        self.profiler = profiler
        self.executor.profiler = profiler
        if profiler is None:
            return
        for transition in self.chart.transitions:
            routine = (action_routine_name(transition.action)
                       if transition.action else "(no action)")
            profiler.label_names.setdefault(
                f"__t{transition.index}", f"t{transition.index} {routine}")

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`repro.obs.FlightRecorder`: every configuration
        cycle appends one digest to its bounded ring, so an escalation can
        dump the recent execution history as a forensics bundle.  Pass
        ``None`` to detach and restore the zero-overhead disabled path."""
        self.recorder = recorder
        if recorder is not None:
            recorder.bind(self)

    def attach_lineage(self, lineage) -> None:
        """Attach a :class:`repro.obs.LineageTracker`: the machine then
        records causal hops — injected event latched, latch enabling a
        dispatch, dispatch raising events and writing ports — as compact
        tuples on the tracker's hop log.  Pass ``None`` to detach and
        restore the zero-overhead disabled path."""
        self.lineage = lineage
        if lineage is not None:
            lineage.bind(self)

    # -- fault injection and recovery --------------------------------------
    def attach_injector(self, injector) -> None:
        """Attach a :class:`repro.fault.FaultInjector` (or ``None`` to
        detach and restore the zero-overhead disabled path).

        An attached injector with an empty plan leaves the machine
        byte-identical to an un-instrumented one — the fault-free parity
        guarantee the tests assert.
        """
        self.injector = injector
        self.cond_cache_bridge.injector = injector
        self.ports.injector = injector
        if injector is not None:
            injector.bind(self)
            if self.tracer is not None:
                injector.attach_tracer(self.tracer)

    def attach_guard(self, guard) -> None:
        """Attach a :class:`repro.fault.MachineGuard`: arms the
        configuration-cycle watchdog, the exclusivity-set checker and the
        bounded-retry policy.  Pass ``None`` to detach."""
        self.guard = guard
        if guard is not None:
            guard.bind(self)
            if self.tracer is not None:
                guard.attach_tracer(self.tracer)

    def fail_tep(self, index: int) -> None:
        """Mark a TEP failed mid-run; the scheduler re-plans over the
        survivors (graceful timing degradation instead of a crash).  Raises
        :class:`MachineError` only when *no* TEP survives."""
        if not 0 <= index < self.arch.n_teps:
            raise MachineError(
                f"cannot fail TEP {index}: architecture has "
                f"{self.arch.n_teps} TEP(s)")
        if index in self.failed_teps:
            return
        self.failed_teps.add(index)
        survivors = [i for i in range(self.arch.n_teps)
                     if i not in self.failed_teps]
        if self.guard is not None:
            self.guard.on_tep_failed(self.cycle_count, index, survivors)
        if not survivors:
            if self.guard is not None:
                # may raise MachineEscalation instead (farm mode)
                self.guard.on_all_teps_failed(self.cycle_count)
            raise MachineError("all TEPs failed; no executor survives")
        self._available_teps = survivors

    # -- checkpoint/restore -------------------------------------------------
    def snapshot(self, include_attachments: bool = True, timer_bank=None):
        """Capture the complete architectural state as a versioned,
        JSON-serializable :class:`~repro.resil.snapshot.MachineSnapshot`
        (call between steps)."""
        from repro.resil.snapshot import snapshot_machine

        return snapshot_machine(self, include_attachments=include_attachments,
                                timer_bank=timer_bank)

    def restore(self, snapshot, restore_attachments: bool = True,
                timer_bank=None) -> None:
        """Load *snapshot* back into this machine; the continuation is
        step-for-step identical to the original run from that cycle on."""
        from repro.resil.snapshot import restore_machine

        restore_machine(self, snapshot,
                        restore_attachments=restore_attachments,
                        timer_bank=timer_bank)

    def _flush_idle(self, tracer) -> None:
        """Emit the pending coalesced quiescent-cycle span, if any."""
        if self._idle_start is None:
            return
        tracer.span(self._tr_machine, "idle", self._idle_start,
                    self._idle_cycles * SLA_OVERHEAD_CYCLES,
                    {"cycles": self._idle_cycles})
        self._idle_start = None
        self._idle_cycles = 0

    def flush_trace(self) -> None:
        """Flush buffered trace state (call before exporting mid-run)."""
        if self.tracer is not None:
            self._flush_idle(self.tracer)

    # -- construction helpers ------------------------------------------------
    def _build_stubs(self):
        return build_transition_stubs(
            self.chart, self.compiled, self._param_names or None)

    # -- stepping ----------------------------------------------------------------
    def step(self, external_events: Iterable[str] = ()) -> MachineStep:
        """Run one configuration cycle."""
        external = set(external_events)
        unknown = external - set(self.chart.events)
        if unknown:
            raise MachineError(f"unknown external events {sorted(unknown)!r}")
        injector = self.injector
        guard = self.guard
        profiler = self.profiler
        _psample = False
        if profiler is not None:
            # phase boundaries are clocked on one step in phase_stride;
            # the rest of the hooks below are inline integer bookkeeping
            profiler.steps += 1
            _psample = profiler.steps % profiler.phase_stride == 0
            if _psample:
                _pclock = profiler.clock
                _pt0 = _pclock()
        if injector is not None:
            # bus faults: drop / duplicate / delay external events
            external = injector.filter_events(self.cycle_count, external)
        internal = self._pending_internal_events
        self._pending_internal_events = set()
        self.cr.sample_events(external, internal)
        if injector is not None:
            # CR bit upsets, RAM flips, TEP failures, stuck ports
            injector.apply_cycle_faults(self.cycle_count, self)
            if guard is not None and injector.state_touched:
                # the exclusivity checker monitors the CR state part
                # directly, so a corrupted state word is caught *before*
                # the SLA evaluates it (a fired transition's entry set can
                # mask the corruption by cycle end)
                problems = guard.check_configuration(self.cr.configuration)
                if problems:
                    self.cr.configuration = guard.on_illegal_configuration(
                        self.cycle_count, problems)
        sampled = frozenset(self.cr.events)
        if _psample:
            _pt1 = _pclock()

        tracer = self.tracer
        enabled = self.pla.enabled(self.cr.bits)
        if injector is not None:
            # stuck-at faults on the SLA product-term outputs
            enabled = injector.filter_enabled(self.cycle_count, enabled)
        retries: List[int] = []
        if guard is not None:
            due = guard.due_retries(self.cycle_count)
            if due:
                # a natural re-firing supersedes the scheduled retry: the
                # dispatch below is the same routine execution either way
                enabled_set = set(enabled)
                retries = [i for i in due if i not in enabled_set]
        self.tat.post(enabled)
        if retries:
            self.tat.post(retries)
        if _psample:
            # trace emission below lands in "dispatch" (tracing and timed
            # profiling are not meant to run together anyway)
            _pt2 = _pclock()
        if tracer is not None:
            if not enabled and not sampled and not retries:
                # quiescent cycle: coalesce into one pending "idle" span
                # instead of paying for per-cycle event emission
                if self._idle_start is None:
                    self._idle_start = self.time
                self._idle_cycles += 1
                tracer = None
            else:
                self._flush_idle(tracer)
                tracer.span(self._tr_sla, "SLA eval", self.time,
                            SLA_OVERHEAD_CYCLES, {"enabled": len(enabled)})
                for name in sorted(sampled):
                    tracer.instant(self._tr_machine, name, self.time)
                words_before = self.cond_cache_bridge.words_total

        transitions = [self.chart.transitions[i] for i in enabled]
        dispatch = enabled + retries
        plan = round_robin_dispatch(
            dispatch, self._routine_of, self.arch,
            self._available_teps) if dispatch else None

        costs: Dict[int, int] = {}
        retired: Optional[Dict[int, int]] = None if tracer is None else {}
        raised_names: Set[str] = set()
        event_index_to_name = self._event_index_to_name
        bridge = self.cond_cache_bridge
        cache = self.executor.condition_cache
        lineage = self.lineage
        port_log = None if lineage is None else self.ports.access_log
        log_before = 0

        while not self.tat.empty:
            index = self.tat.pop()
            assert index is not None
            effect = (injector.dispatch_effect(self.cycle_count, index)
                      if injector is not None else None)
            if lineage is not None:
                log_before = len(port_log)
            bridge.copy_in(self.cr, cache)
            self.executor.events_raised = set()
            if retired is not None:
                executed_before = self.executor.instructions_executed
            budget = guard.budgets.get(index) if guard is not None else None
            if effect is None and budget is None:
                costs[index] = self.executor.run(self.tat.entry(index))
                completed = True
            else:
                cost, completed, detected = self._execute_dispatch(
                    index, effect, budget)
                costs[index] = cost
                if not completed and detected:
                    guard.on_watchdog_abort(self.cycle_count, index)
            if retired is not None:
                retired[index] = (self.executor.instructions_executed
                                  - executed_before)
            if lineage is not None:
                # recorded before the abort branch: an aborted dispatch is
                # still a causal hop (its raises stay quarantined — the
                # digester drops them, mirroring the transactional abort)
                lineage.on_dispatch(self.cycle_count, index, completed,
                                    self.executor.events_raised,
                                    port_log[log_before:])
            if not completed:
                # aborted or runaway: the routine's condition/event effects
                # are transactional — no copy-back, raised events dropped
                self.executor.events_raised = set()
                continue
            bridge.copy_back(self.cr, cache)
            for event_index in self.executor.events_raised:
                name = event_index_to_name.get(event_index)
                if name is None:
                    raise MachineError(
                        f"routine raised unknown event index {event_index}")
                raised_names.add(name)
            if guard is not None and guard.has_open_abort(index):
                guard.on_retry_success(self.cycle_count, index)

        if _psample:
            _pt3 = _pclock()
        # state update (same per-transition order as the interpreter)
        configuration = set(self.cr.configuration)
        for transition in transitions:
            exited = self.chart.exit_set(transition, frozenset(configuration))
            entered = self.chart.entry_set(transition)
            configuration -= exited
            configuration |= entered
        self.cr.configuration = frozenset(configuration)

        self.cr.reset_events()
        self._pending_internal_events |= raised_names

        if guard is not None and (
                transitions
                or (injector is not None and injector.state_touched)):
            # exclusivity-set check: the natural parity of the Drusinsky
            # encoding — recover to the declared safe state on violation
            problems = guard.check_configuration(self.cr.configuration)
            if problems:
                self.cr.configuration = guard.on_illegal_configuration(
                    self.cycle_count, problems)

        if _psample:
            _pt4 = _pclock()
        makespan = plan.makespan(lambda i: costs[i]) if plan else 0
        cycle_length = SLA_OVERHEAD_CYCLES + makespan
        step = MachineStep(
            fired=transitions,
            configuration=self.cr.configuration,
            cycle_length=cycle_length,
            start_time=self.time,
            end_time=self.time + cycle_length,
            plan=plan,
            events_sampled=sampled,
            events_raised=frozenset(raised_names),
            faults=() if injector is None else injector.drain_cycle_log(),
            recoveries=() if guard is None else guard.drain_cycle_log(),
        )
        if tracer is not None:
            self._trace_cycle(tracer, step, plan, costs, retired,
                              raised_names, words_before)
        if self.recorder is not None:
            self.recorder.record_step(self.cycle_count, step)
        if lineage is not None:
            lineage.on_step(self.cycle_count, step)
        self.time += cycle_length
        self.cycle_count += 1
        if self._keep_history:
            self.history.append(step)
        if profiler is not None:
            profiler.sla_cycles += SLA_OVERHEAD_CYCLES
            profiler.dispatch_cycles += makespan
            if _psample:
                profiler.phase_sample(_pt0, _pt1, _pt2, _pt3, _pt4,
                                      _pclock())
        return step

    def _execute_dispatch(self, index: int, effect, budget: Optional[int]
                          ) -> Tuple[int, bool, bool]:
        """Run one dispatch under an optional injected *effect* (stall or
        runaway fault) and an optional watchdog *budget*.

        Returns ``(cost, completed, detected)``: the cycles charged, whether
        the routine ran to completion (aborted/runaway routines have their
        condition-cache copy-back and raised events suppressed), and whether
        the watchdog caught the overrun.
        """
        from repro.fault.model import DEFAULT_RUNAWAY_CYCLES, TEP_RUNAWAY
        from repro.pscp.tep import TepBudgetExceeded

        executor = self.executor
        entry = self.tat.entry(index)
        if effect is not None and effect.kind == TEP_RUNAWAY:
            # the routine never returns: without a watchdog the TEP is lost
            # for DEFAULT_RUNAWAY_CYCLES; with one, it is aborted at budget
            if budget is not None:
                return budget, False, True
            return (effect.param or DEFAULT_RUNAWAY_CYCLES), False, False
        cycles_before = executor.cycles
        depth = len(executor.call_stack)
        limit = budget if budget is not None else 1_000_000
        try:
            cost = executor.run(entry, max_cycles=limit)
        except TepBudgetExceeded:
            # watchdog abort: charge exactly the budget, unwind the stack
            del executor.call_stack[depth:]
            executor.cycles = cycles_before + limit
            return limit, False, budget is not None
        if effect is not None:  # TEP_STALL: the routine ran, then hung
            cost += effect.param
            executor.cycles += effect.param
            if budget is not None and cost > budget:
                executor.cycles = cycles_before + budget
                return budget, False, True
        return cost, True, False

    def _trace_cycle(self, tracer, step: MachineStep,
                     plan: Optional[DispatchPlan], costs: Dict[int, int],
                     retired: Dict[int, int], raised_names: Set[str],
                     words_before: int) -> None:
        """Emit this configuration cycle's trace events (tracing enabled)."""
        start, end = step.start_time, step.end_time
        tracer.span(
            self._tr_machine, "cycle", start, step.cycle_length,
            {"cycle": self.cycle_count, "fired": len(step.fired)})
        if plan is not None:
            parallel_start = start + SLA_OVERHEAD_CYCLES
            tracer.span(self._tr_sched, "TAT drain", parallel_start,
                        step.cycle_length - SLA_OVERHEAD_CYCLES,
                        {"transitions": len(plan.order)})
            for index, tep_index in plan.diverted:
                tracer.instant(self._tr_sched, "mutex-serialize",
                               parallel_start,
                               {"transition": index, "tep": tep_index})
            for tep_index, queue in enumerate(plan.queues):
                cursor = parallel_start
                for index in queue:
                    duration = DISPATCH_OVERHEAD_CYCLES + costs[index]
                    tracer.span(
                        self._tr_teps[tep_index], self._span_names[index],
                        cursor, duration,
                        {"transition": index, "cycles": costs[index],
                         "instructions": retired[index]})
                    cursor += duration
        for name in sorted(raised_names):
            tracer.instant(self._tr_machine, f"raise {name}", end)
        words_delta = self.cond_cache_bridge.words_total - words_before
        if words_delta:
            tracer.counter(self._tr_bus, "cache words", end, words_delta)

    def run(self, traces: Iterable[Iterable[str]]) -> List[MachineStep]:
        steps = [self.step(events) for events in traces]
        self.flush_trace()
        return steps

    def _routine_of(self, transition_index: int) -> Optional[str]:
        transition = self.chart.transitions[transition_index]
        if not transition.action:
            return None
        return action_routine_name(transition.action)

    # -- convenience ------------------------------------------------------------
    def condition(self, name: str) -> bool:
        return name in self.cr.conditions

    def in_state(self, name: str) -> bool:
        return name in self.cr.configuration

    def read_global(self, name: str) -> int:
        loc = self.compiled.allocator.locations[name]
        return self.executor.read_variable(loc)

    def write_global(self, name: str, value: int) -> None:
        loc = self.compiled.allocator.locations[name]
        self.executor.write_variable(loc, value)


def build_transition_stubs(
    chart: Chart,
    compiled: CompiledProgram,
    param_names: Optional[Dict[str, List[str]]],
) -> Tuple[List[Instruction], Dict[int, str]]:
    """Stub generation with explicit per-routine parameter name lists.

    ``param_names`` maps routine name to its parameter names in order; when
    ``None`` it is recovered from the compiled objects' cost trees is not
    possible, so the caller (the flow) should pass it — the fallback assumes
    parameterless routines only and raises otherwise.
    """
    instructions: List[Instruction] = []
    entries: Dict[int, str] = {}
    arch = compiled.arch
    for transition in chart.transitions:
        label = f"__t{transition.index}"
        entries[transition.index] = label
        body: List[Instruction] = []
        if transition.action:
            routine = action_routine_name(transition.action)
            builtin = _builtin_stub_body(routine, transition, compiled)
            if builtin is not None:
                body.extend(builtin)
                body.append(Instruction(Op.TRET, comment=transition.describe()))
                body[0] = body[0].with_label(label)
                instructions.extend(body)
                continue
            if routine not in compiled.objects:
                raise MachineError(
                    f"transition {transition.describe()}: routine "
                    f"{routine!r} was not compiled")
            arguments = action_arguments(transition.action)
            if param_names is not None:
                params = param_names.get(routine, [])
            elif arguments:
                raise MachineError(
                    f"transition {transition.describe()}: parameter names "
                    f"for {routine!r} are required to marshal arguments")
            else:
                params = []
            if len(arguments) != len(params):
                raise MachineError(
                    f"transition {transition.describe()}: {routine} takes "
                    f"{len(params)} argument(s), label passes "
                    f"{len(arguments)}")
            mask = (1 << arch.data_width) - 1
            for argument, param_name in zip(arguments, params):
                value = _resolve_argument(argument, compiled)
                loc = compiled.allocator.locations[f"{routine}.{param_name}"]
                for word_index, operand in enumerate(loc.words):
                    word = (value >> (word_index * arch.data_width)) & mask
                    body.append(Instruction(Op.LDA, Imm(word)))
                    body.append(Instruction(Op.STA, operand))
            body.append(Instruction(Op.CALL, LabelRef(routine),
                                    comment=transition.action))
        body.append(Instruction(Op.TRET, comment=transition.describe()))
        body[0] = body[0].with_label(label)
        instructions.extend(body)
    return instructions, entries


def stub_wcet(transition: Transition, compiled: CompiledProgram,
              param_names: Optional[Dict[str, List[str]]] = None) -> int:
    """Static worst-case cycles of one transition's stub + routine.

    This is the per-transition quantity the timing validator sums along
    event cycles (plus the scheduler's dispatch overhead).
    """
    arch = compiled.arch
    wcets = compiled.wcets()
    if transition.wcet_override is not None:
        # "otherwise explicit timing constraints must be specified"
        return transition.wcet_override
    total = cycle_cost(Instruction(Op.TRET), arch)
    if transition.action:
        routine = action_routine_name(transition.action)
        if routine in ("SetTrue", "SetFalse", "Raise"):
            from repro.isa.isa import SignalRef
            op = {"SetTrue": Op.CSET, "SetFalse": Op.CCLR,
                  "Raise": Op.EVSET}[routine]
            return total + cycle_cost(Instruction(op, SignalRef(0)), arch)
        arguments = action_arguments(transition.action)
        params = (param_names or {}).get(routine, [""] * len(arguments))
        for argument, param_name in zip(arguments, params):
            key = f"{routine}.{param_name}"
            if key in compiled.allocator.locations:
                loc = compiled.allocator.locations[key]
                for word_index in range(loc.n_words):
                    total += cycle_cost(Instruction(Op.LDA, Imm(0)), arch)
                    total += cycle_cost(
                        Instruction(Op.STA, loc.word(word_index)), arch)
        total += cycle_cost(Instruction(Op.CALL, LabelRef(routine)), arch)
        total += wcets[routine]
    return total
