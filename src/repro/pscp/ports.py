"""The external port architecture.

"In the final implementation, a port is represented by an address" (section
2).  The :class:`PortBus` maps port addresses to handlers so the environment
(stepper motors, a central controller, test fixtures) can sit behind the
data ports, while events and conditions flow through the CR.

Port addresses come from the chart's declarations
(:meth:`repro.isa.codegen.NameMaps.from_chart` assigns them from 0x700
upward when unspecified, echoing Fig. 2b's 0700/0712/0717).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

ReadHandler = Callable[[], int]
WriteHandler = Callable[[int], None]


class PortError(Exception):
    """Raised for unmapped port accesses in strict mode."""


class PortBus:
    """Address-mapped data ports with optional handlers.

    Unmapped ports behave as latches (read back the last written value, 0
    initially) unless ``strict`` is set, in which case unmapped accesses
    raise — useful to catch address-map bugs in tests.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self._readers: Dict[int, ReadHandler] = {}
        self._writers: Dict[int, WriteHandler] = {}
        self._latches: Dict[int, int] = {}
        self.access_log: List[Tuple[str, int, int]] = []
        #: fault injection: ``None`` keeps reads on the fault-free path
        self.injector = None

    def map_read(self, address: int, handler: ReadHandler) -> None:
        self._readers[address] = handler

    def map_write(self, address: int, handler: WriteHandler) -> None:
        self._writers[address] = handler

    def map_latch(self, address: int, initial: int = 0) -> None:
        self._latches[address] = initial

    def read(self, address: int) -> int:
        if address in self._readers:
            value = self._readers[address]()
        elif address in self._latches or not self.strict:
            value = self._latches.get(address, 0)
        else:
            raise PortError(f"read from unmapped port 0x{address:x}")
        if self.injector is not None:
            value = self.injector.on_port_read(address, value)
        self.access_log.append(("r", address, value))
        return value

    def write(self, address: int, value: int) -> None:
        self.access_log.append(("w", address, value))
        if address in self._writers:
            self._writers[address](value)
            return
        if address in self._latches or not self.strict:
            self._latches[address] = value
            return
        raise PortError(f"write to unmapped port 0x{address:x}")

    def latch_value(self, address: int) -> int:
        return self._latches.get(address, 0)
