"""Cycle traces and deadline monitoring.

The paper's timing constraints (Table 2) are event arrival periods: an
event arriving every P reference-clock cycles must be consumed before its
next arrival.  The :class:`DeadlineMonitor` watches a machine's steps and
records, per constrained event, the latency from arrival to the end of the
configuration cycle that consumed it — the dynamic counterpart of the static
event-cycle bounds, used by the closed-loop validation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.pscp.machine import MachineStep
from repro.statechart.model import Chart


@dataclass
class EventRecord:
    """One arrival of a constrained event."""

    event: str
    arrival_time: int
    consumed_time: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.consumed_time is None:
            return None
        return self.consumed_time - self.arrival_time


@dataclass
class DeadlineReport:
    event: str
    period: int
    arrivals: int
    consumed: int
    worst_latency: Optional[int]
    misses: int

    @property
    def met(self) -> bool:
        return self.misses == 0 and self.arrivals == self.consumed


class DeadlineMonitor:
    """Feed it every arrival and every machine step; ask for reports."""

    def __init__(self, chart: Chart) -> None:
        self.chart = chart
        self.periods: Dict[str, int] = {
            event.name: event.period
            for event in chart.constrained_events()}
        self.records: Dict[str, List[EventRecord]] = {
            name: [] for name in self.periods}
        self._open: Dict[str, EventRecord] = {}

    def arrival(self, event: str, time: int) -> None:
        """An external constrained event was offered to the machine."""
        if event not in self.periods:
            return
        record = EventRecord(event, time)
        self.records[event].append(record)
        # a still-unconsumed previous arrival is a miss (overwritten event)
        self._open[event] = record

    def observe(self, step: MachineStep) -> None:
        """Give the monitor the machine step that sampled recent arrivals."""
        for event in step.events_sampled:
            record = self._open.get(event)
            if record is None:
                continue
            consuming = any(t.consumes(event) for t in step.fired)
            if consuming:
                record.consumed_time = step.end_time
                del self._open[event]

    def report(self, event: str) -> DeadlineReport:
        period = self.periods[event]
        records = self.records[event]
        consumed = [r for r in records if r.latency is not None]
        worst = max((r.latency for r in consumed), default=None)
        misses = sum(1 for r in consumed if r.latency > period)
        misses += len(records) - len(consumed) - (1 if event in self._open else 0)
        # an arrival superseded by a newer one before consumption is a miss
        return DeadlineReport(
            event=event,
            period=period,
            arrivals=len(records),
            consumed=len(consumed),
            worst_latency=worst,
            misses=misses,
        )

    def reports(self) -> List[DeadlineReport]:
        return [self.report(event) for event in self.periods]

    def all_met(self) -> bool:
        return all(report.misses == 0 for report in self.reports())
