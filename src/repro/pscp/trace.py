"""Cycle traces and deadline monitoring.

The paper's timing constraints (Table 2) are event arrival periods: an
event arriving every P reference-clock cycles must be consumed before its
next arrival.  The :class:`DeadlineMonitor` watches a machine's steps and
records, per constrained event, the latency from arrival to the end of the
configuration cycle that consumed it — the dynamic counterpart of the static
event-cycle bounds, used by the closed-loop validation benchmark.

Miss accounting is explicit, decided at the moment the outcome is known:

* an arrival still unconsumed when the next arrival of the same event lands
  is **superseded** (the CR event bit is overwritten) — a miss, recorded at
  :meth:`DeadlineMonitor.arrival` time;
* an arrival sampled into a configuration cycle that fires no consuming
  transition is **dropped** ("events are only available during a single
  system cycle") — a miss, recorded at :meth:`DeadlineMonitor.observe` time;
* a consumed arrival whose latency exceeds the period is a **late** miss;
* the final, still-open arrival is a miss only once the machine's clock has
  already advanced past its deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.pscp.machine import MachineStep
from repro.statechart.model import Chart


@dataclass
class EventRecord:
    """One arrival of a constrained event."""

    event: str
    arrival_time: int
    consumed_time: Optional[int] = None
    #: overwritten by a newer arrival before any cycle consumed it
    superseded: bool = False
    #: sampled into a cycle whose fired transitions did not consume it
    dropped: bool = False

    @property
    def latency(self) -> Optional[int]:
        if self.consumed_time is None:
            return None
        return self.consumed_time - self.arrival_time

    def is_miss(self, period: int, now: Optional[int] = None) -> bool:
        """Did this arrival miss its deadline?

        ``now`` (the latest observed machine time) decides the still-open
        case: unconsumed and already past the deadline is a miss.
        """
        if self.superseded or self.dropped:
            return True
        if self.consumed_time is not None:
            return self.latency > period
        return now is not None and now - self.arrival_time > period


@dataclass
class DeadlineReport:
    event: str
    period: int
    arrivals: int
    consumed: int
    worst_latency: Optional[int]
    misses: int
    superseded: int = 0
    dropped: int = 0

    @property
    def met(self) -> bool:
        return self.misses == 0 and self.arrivals == self.consumed


class DeadlineMonitor:
    """Feed it every arrival and every machine step; ask for reports."""

    def __init__(self, chart: Chart) -> None:
        self.chart = chart
        self.periods: Dict[str, int] = {
            event.name: event.period
            for event in chart.constrained_events()}
        self.records: Dict[str, List[EventRecord]] = {
            name: [] for name in self.periods}
        self._open: Dict[str, EventRecord] = {}
        self._now: Optional[int] = None

    def arrival(self, event: str, time: int) -> None:
        """An external constrained event was offered to the machine."""
        if event not in self.periods:
            return
        # a still-unconsumed previous arrival is overwritten — explicit miss
        previous = self._open.get(event)
        if previous is not None:
            previous.superseded = True
        record = EventRecord(event, time)
        self.records[event].append(record)
        self._open[event] = record

    def observe(self, step: MachineStep) -> None:
        """Give the monitor the machine step that sampled recent arrivals."""
        self._now = step.end_time
        for event in step.events_sampled:
            record = self._open.get(event)
            if record is None:
                continue
            if any(t.consumes(event) for t in step.fired):
                record.consumed_time = step.end_time
            else:
                # the CR resets the event part at end of cycle: an arrival
                # sampled but not consumed this cycle is gone for good
                record.dropped = True
            del self._open[event]

    def report(self, event: str) -> DeadlineReport:
        period = self.periods[event]
        records = self.records[event]
        consumed = [r for r in records if r.latency is not None]
        return DeadlineReport(
            event=event,
            period=period,
            arrivals=len(records),
            consumed=len(consumed),
            worst_latency=max((r.latency for r in consumed), default=None),
            misses=sum(1 for r in records if r.is_miss(period, self._now)),
            superseded=sum(1 for r in records if r.superseded),
            dropped=sum(1 for r in records if r.dropped),
        )

    def reports(self) -> List[DeadlineReport]:
        return [self.report(event) for event in self.periods]

    def all_met(self) -> bool:
        return all(report.misses == 0 for report in self.reports())

    def publish(self, metrics) -> None:
        """Publish the monitor's state into a metrics registry
        (:class:`repro.obs.MetricsRegistry`)."""
        for report in self.reports():
            prefix = f"deadline.{report.event}"
            metrics.counter(f"{prefix}.arrivals",
                            "constrained-event arrivals").value = \
                report.arrivals
            metrics.counter(f"{prefix}.consumed").value = report.consumed
            metrics.counter(f"{prefix}.misses").value = report.misses
            metrics.gauge(f"{prefix}.period_cycles").set(report.period)
            histogram = metrics.histogram(
                f"{prefix}.latency_cycles",
                "arrival-to-consumption latency")
            histogram.reset()  # publish() snapshots the whole run
            for record in self.records[report.event]:
                if record.latency is not None:
                    histogram.observe(record.latency)
