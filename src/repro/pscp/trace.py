"""Cycle traces and deadline monitoring.

The paper's timing constraints (Table 2) are event arrival periods: an
event arriving every P reference-clock cycles must be consumed before its
next arrival.  The :class:`DeadlineMonitor` watches a machine's steps and
records, per constrained event, the latency from arrival to the end of the
configuration cycle that consumed it — the dynamic counterpart of the static
event-cycle bounds, used by the closed-loop validation benchmark.

Miss accounting is explicit, decided at the moment the outcome is known:

* an arrival still unconsumed when the next arrival of the same event lands
  is **superseded** (the CR event bit is overwritten) — a miss, recorded at
  :meth:`DeadlineMonitor.arrival` time;
* an arrival sampled into a configuration cycle that fires no consuming
  transition is **dropped** ("events are only available during a single
  system cycle") — a miss, recorded at :meth:`DeadlineMonitor.observe` time;
* a consumed arrival whose latency exceeds the period is a **late** miss;
* the final, still-open arrival is a miss only once the machine's clock has
  already advanced past its deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.pscp.machine import MachineStep
from repro.statechart.model import Chart


@dataclass
class EventRecord:
    """One arrival of a constrained event."""

    event: str
    arrival_time: int
    consumed_time: Optional[int] = None
    #: overwritten by a newer arrival before any cycle consumed it
    superseded: bool = False
    #: sampled into a cycle whose fired transitions did not consume it
    dropped: bool = False
    #: machine time of the superseding arrival / the dropping cycle's end
    resolved_at: Optional[int] = None
    #: the consuming cycle's start and length (critical-path attribution)
    consumed_start: Optional[int] = None
    consumed_length: Optional[int] = None

    @property
    def outcome(self) -> str:
        if self.superseded:
            return "superseded"
        if self.dropped:
            return "dropped"
        if self.consumed_time is not None:
            return "consumed"
        return "open"

    @property
    def latency(self) -> Optional[int]:
        if self.consumed_time is None:
            return None
        return self.consumed_time - self.arrival_time

    def is_miss(self, period: int, now: Optional[int] = None) -> bool:
        """Did this arrival miss its deadline?

        ``now`` (the latest observed machine time) decides the still-open
        case: unconsumed and already past the deadline is a miss.
        """
        if self.superseded or self.dropped:
            return True
        if self.consumed_time is not None:
            return self.latency > period
        return now is not None and now - self.arrival_time > period


@dataclass
class DeadlineReport:
    event: str
    period: int
    arrivals: int
    consumed: int
    worst_latency: Optional[int]
    misses: int
    superseded: int = 0
    dropped: int = 0

    @property
    def met(self) -> bool:
        return self.misses == 0 and self.arrivals == self.consumed


class DeadlineMonitor:
    """Feed it every arrival and every machine step; ask for reports."""

    def __init__(self, chart: Chart) -> None:
        self.chart = chart
        self.periods: Dict[str, int] = {
            event.name: event.period
            for event in chart.constrained_events()}
        self.records: Dict[str, List[EventRecord]] = {
            name: [] for name in self.periods}
        self._open: Dict[str, EventRecord] = {}
        self._now: Optional[int] = None
        #: (start, end, kind) spans of cycles the guard spent recovering —
        #: fed only when a step carries recoveries, so the common path
        #: stays one truthiness check per observed step
        self._anomalies: List[tuple] = []

    def arrival(self, event: str, time: int) -> None:
        """An external constrained event was offered to the machine."""
        if event not in self.periods:
            return
        # a still-unconsumed previous arrival is overwritten — explicit miss
        previous = self._open.get(event)
        if previous is not None:
            previous.superseded = True
            previous.resolved_at = time
        record = EventRecord(event, time)
        self.records[event].append(record)
        self._open[event] = record

    def observe(self, step: MachineStep) -> None:
        """Give the monitor the machine step that sampled recent arrivals."""
        self._now = step.end_time
        if step.recoveries:
            self._note_anomalies(step)
        for event in step.events_sampled:
            record = self._open.get(event)
            if record is None:
                continue
            if any(t.consumes(event) for t in step.fired):
                record.consumed_time = step.end_time
                record.consumed_start = step.start_time
                record.consumed_length = step.cycle_length
            else:
                # the CR resets the event part at end of cycle: an arrival
                # sampled but not consumed this cycle is gone for good
                record.dropped = True
                record.resolved_at = step.end_time
            del self._open[event]

    def _note_anomalies(self, step: MachineStep) -> None:
        """Classify a recovery-bearing cycle for latency attribution."""
        kinds = {r.kind for r in step.recoveries}
        retry_kinds = {"watchdog-abort", "retry-exhausted"}
        kind = "retry" if kinds & retry_kinds else "restart"
        self._anomalies.append((step.start_time, step.end_time, kind))

    def report(self, event: str) -> DeadlineReport:
        period = self.periods[event]
        records = self.records[event]
        consumed = [r for r in records if r.latency is not None]
        return DeadlineReport(
            event=event,
            period=period,
            arrivals=len(records),
            consumed=len(consumed),
            worst_latency=max((r.latency for r in consumed), default=None),
            misses=sum(1 for r in records if r.is_miss(period, self._now)),
            superseded=sum(1 for r in records if r.superseded),
            dropped=sum(1 for r in records if r.dropped),
        )

    def reports(self) -> List[DeadlineReport]:
        return [self.report(event) for event in self.periods]

    def all_met(self) -> bool:
        return all(report.misses == 0 for report in self.reports())

    # -- critical-path attribution -----------------------------------------
    def explain(self, miss, ledger_timeline=None) -> Dict[str, object]:
        """Where did one arrival's latency go?  *miss* is an
        :class:`EventRecord` or an event name (the worst miss of that
        event is picked; with no miss, the worst consumed latency).

        Returns the dominant path split into cycle-cost segments:
        ``queued`` (arrival to the start of the resolving cycle, minus
        recovery cycles), ``retry`` (watchdog-abort/retry cycles inside
        the wait), ``restart`` (safe-state/failover recovery cycles) and
        ``dispatch`` (the consuming cycle itself).  *ledger_timeline* — a
        supervisor :attr:`~repro.resil.supervisor.FarmLedger.timeline` —
        adds tick-stamped shed/restart-from-checkpoint annotations from
        the farm layer.  Deterministic: same run, same answer.
        """
        record = miss if isinstance(miss, EventRecord) \
            else self._pick_record(miss)
        period = self.periods.get(record.event)
        is_miss = period is not None and record.is_miss(period, self._now)
        if record.consumed_start is not None:
            resolved = record.consumed_start
        elif record.resolved_at is not None:
            resolved = record.resolved_at
        else:
            resolved = self._now if self._now is not None \
                else record.arrival_time
        resolved = max(resolved, record.arrival_time)

        retry = restart = 0
        for start, end, kind in self._anomalies:
            if start >= record.arrival_time and end <= resolved:
                if kind == "retry":
                    retry += end - start
                else:
                    restart += end - start
        queued = max(0, resolved - record.arrival_time - retry - restart)
        segments = [{"kind": "queued", "cycles": queued}]
        if retry:
            segments.append({"kind": "retry", "cycles": retry})
        if restart:
            segments.append({"kind": "restart", "cycles": restart})
        if record.consumed_length is not None:
            segments.append({"kind": "dispatch",
                             "cycles": record.consumed_length})
        dominant = max(segments, key=lambda s: (s["cycles"], s["kind"]))

        annotations = []
        if ledger_timeline:
            farm_kinds = {"shed", "respawn", "promotion", "backoff",
                          "worker-lost", "process-kill"}
            annotations = [dict(entry) for entry in ledger_timeline
                           if entry.get("kind") in farm_kinds]
        outcome = record.outcome
        if outcome == "consumed":
            outcome = "late" if is_miss else "met"
        elif outcome == "open" and is_miss:
            outcome = "expired-open"
        return {
            "event": record.event,
            "arrival_time": record.arrival_time,
            "period": period,
            "deadline": (record.arrival_time + period
                         if period is not None else None),
            "outcome": outcome,
            "miss": is_miss,
            "latency": record.latency,
            "segments": segments,
            "dominant": dominant["kind"],
            "annotations": annotations,
        }

    def _pick_record(self, event: str) -> EventRecord:
        records = self.records.get(event)
        if not records:
            raise KeyError(f"no arrivals recorded for event {event!r}")
        period = self.periods[event]
        misses = [r for r in records if r.is_miss(period, self._now)]
        pool = misses if misses else records
        return max(pool, key=lambda r: (r.latency or 0, r.arrival_time))

    def publish(self, metrics) -> None:
        """Publish the monitor's state into a metrics registry
        (:class:`repro.obs.MetricsRegistry`)."""
        for report in self.reports():
            prefix = f"deadline.{report.event}"
            metrics.counter(f"{prefix}.arrivals",
                            "constrained-event arrivals").value = \
                report.arrivals
            metrics.counter(f"{prefix}.consumed").value = report.consumed
            metrics.counter(f"{prefix}.misses").value = report.misses
            metrics.gauge(f"{prefix}.period_cycles").set(report.period)
            histogram = metrics.histogram(
                f"{prefix}.latency_cycles",
                "arrival-to-consumption latency")
            histogram.reset()  # publish() snapshots the whole run
            for record in self.records[report.event]:
                if record.latency is not None:
                    histogram.observe(record.latency)
