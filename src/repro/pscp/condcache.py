"""The condition-cache bridge: CR ⇄ per-TEP cache copy traffic.

"The scheduler copies the contents of the condition part of the CR into the
local condition caches" before dispatching a transition, and copies the
cache back into the CR when the routine returns.  The bridge models that
traffic in one place: the machine calls :meth:`copy_in` / :meth:`copy_back`
around every routine execution, and the bridge keeps exact word counts so
the tracer and the metrics registry can report bus utilization without the
machine knowing how.

The copy itself is behaviour the cycle-exact benchmarks depend on, so the
bridge preserves the historical iteration orders exactly: copy-in walks the
chart's condition declaration order, copy-back walks the compiled
condition-index map.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pscp.cr import ConfigurationRegister


class ConditionCacheBridge:
    """Copy-in/copy-back between the CR and one TEP's condition cache."""

    __slots__ = ("condition_indices", "index_to_name",
                 "words_copied_in", "words_copied_back", "transfers",
                 "injector")

    def __init__(self, condition_indices: Dict[str, int]) -> None:
        #: condition name -> cache slot (the compiled NameMaps view)
        self.condition_indices = dict(condition_indices)
        self.index_to_name = {index: name for name, index
                              in condition_indices.items()}
        self.words_copied_in = 0
        self.words_copied_back = 0
        self.transfers = 0
        #: fault injection: ``None`` keeps the copies on the fault-free path
        self.injector = None

    def copy_in(self, cr: ConfigurationRegister,
                cache: List[bool]) -> int:
        """CR condition part -> cache; returns words moved."""
        moved = 0
        for name, value in cr.condition_vector().items():
            cache_index = self.condition_indices.get(name)
            if cache_index is not None:
                cache[cache_index] = value
                moved += 1
        self.words_copied_in += moved
        self.transfers += 1
        if self.injector is not None:
            self.injector.on_cache_copy_in(cache)
        return moved

    def copy_back(self, cr: ConfigurationRegister,
                  cache: List[bool]) -> int:
        """Cache -> CR condition part; returns words moved."""
        if self.injector is not None:
            self.injector.on_cache_copy_back(cache)
        updates = {}
        for cache_index, name in self.index_to_name.items():
            updates[name] = cache[cache_index]
        cr.write_conditions(updates)
        moved = len(updates)
        self.words_copied_back += moved
        return moved

    @property
    def words_total(self) -> int:
        return self.words_copied_in + self.words_copied_back
