"""Transition dispatch: round-robin over TEPs, with mutual exclusions.

"The scheduler copies the contents of the condition part of the CR into the
local condition caches, and assigns the execution of the individual
transitions to the available TEPs employing a round-robin protocol.  Thus,
depending on the number of TEPs, several transitions can be executed in
parallel."  And for multi-TEP versions: "designers must indicate which
transition routines should be mutually exclusive.  Then, additional decode
logic can be generated so that mutually exclusive routines are not scheduled
in parallel."

The simulator executes transitions sequentially (so shared-memory effects
are deterministic); parallelism is a *timing* model: the cycle's length is
the makespan of the per-TEP queues.  Mutually exclusive routines are forced
onto the same TEP queue, which serializes them exactly as the paper's decode
logic would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.isa.arch import ArchConfig

#: scheduler cycles to enable the SLA and latch the Transition Address Table
SLA_OVERHEAD_CYCLES = 2
#: scheduler cycles per dispatched transition: trigger the TEP, transition
#: address pickup, condition-cache copy-in and copy-back
DISPATCH_OVERHEAD_CYCLES = 4


@dataclass
class DispatchPlan:
    """Per-TEP queues for one configuration cycle."""

    queues: List[List[int]]
    #: execution order across the machine (queue-major is NOT the order —
    #: transitions run in index order for deterministic shared state)
    order: List[int]
    #: (transition index, tep) pairs that were pulled off the round-robin
    #: rotation onto an exclusion partner's queue — each one is a
    #: serialization stall the mutual-exclusion decode logic would cause
    diverted: List[Tuple[int, int]] = field(default_factory=list)

    def tep_of(self, transition_index: int) -> int:
        for tep, queue in enumerate(self.queues):
            if transition_index in queue:
                return tep
        raise KeyError(transition_index)

    def makespan(self, cost: Callable[[int], int]) -> int:
        """Cycle count of the parallel phase given per-transition costs."""
        if not self.order:
            return 0
        return max(
            sum(cost(index) + DISPATCH_OVERHEAD_CYCLES for index in queue)
            for queue in self.queues if queue)


def round_robin_dispatch(
    transition_indices: Sequence[int],
    routine_of: Callable[[int], Optional[str]],
    arch: ArchConfig,
    available_teps: Optional[Sequence[int]] = None,
) -> DispatchPlan:
    """Assign this cycle's transitions to TEP queues.

    Round-robin in transition-index order; a transition whose routine is
    declared mutually exclusive with a routine already queued on another TEP
    is appended to *that* TEP's queue instead (serialization through the
    generated decode logic).

    ``available_teps`` restricts the rotation to the given TEP indices (TEP
    failover: survivors absorb the failed TEP's share, degrading timing
    gracefully).  ``None`` means all of ``arch.n_teps`` — the default path is
    bit-identical to the historical scheduler.
    """
    teps = (list(available_teps) if available_teps is not None
            else list(range(arch.n_teps)))
    if not teps:
        raise ValueError("no TEP available for dispatch")
    queues: List[List[int]] = [[] for _ in range(arch.n_teps)]
    order = sorted(transition_indices)
    diverted: List[Tuple[int, int]] = []
    rotation = 0
    for index in order:
        routine = routine_of(index)
        target = None
        if routine is not None and arch.mutual_exclusions:
            for tep in teps:
                for queued in queues[tep]:
                    other = routine_of(queued)
                    if other is not None and arch.mutually_exclusive(routine, other):
                        target = tep
                        break
                if target is not None:
                    break
        if target is None:
            target = teps[rotation % len(teps)]
            rotation += 1
        else:
            diverted.append((index, target))
        queues[target].append(index)
    return DispatchPlan(queues, order, diverted)
