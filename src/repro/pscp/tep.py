"""Cycle-counting TEP simulator.

Executes assembler-level TEP programs (lists of
:class:`~repro.isa.isa.Instruction`) with exact architectural state:
accumulator, operand register, flags (Z/C/N), register file, internal and
external RAM, data ports, the per-TEP condition cache, and the event lines
into the Configuration Register.  Every executed instruction is charged the
length of its microprogram (:func:`repro.isa.microcode.cycle_cost`), so the
simulator's cycle counts are *exactly* the quantities the static WCET
analysis bounds — the property the closed-loop benchmarks check.

Flag conventions (documented here once, relied on by the code generator):

* loads (``LDA``/``LDI``/``CTST``/``INP``) set Z and N, preserve C;
* ALU operations set Z, N and C (C = carry out for ``ADD``/``ADC``,
  borrow for ``SUB``/``SBC``/``CMP``);
* shifts move the outgoing bit into C (``RCL``/``RCR`` rotate through it);
* stores and jumps change no flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.arch import ArchConfig, StorageClass
from repro.isa.isa import (
    Imm,
    Instruction,
    IsaError,
    LabelRef,
    Mem,
    Op,
    Operand,
    PortRef,
    Reg,
    SignalRef,
)
from repro.isa.microcode import cycle_cost
from repro.isa.patterns import evaluate_signature


class TepError(Exception):
    """Raised on execution faults (bad operands, stack problems, runaway)."""


class TepBudgetExceeded(TepError):
    """Raised when a run exceeds its cycle budget (``max_cycles``).

    The machine's watchdog catches this to abort the dispatch at the budget;
    without a watchdog it surfaces as the runaway-execution guard."""


class SimplePorts:
    """Dict-backed port bus for standalone tests."""

    def __init__(self, initial: Optional[Dict[int, int]] = None) -> None:
        self.values: Dict[int, int] = dict(initial or {})
        self.writes: List[Tuple[int, int]] = []

    def read(self, address: int) -> int:
        return self.values.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self.values[address] = value
        self.writes.append((address, value))


@dataclass
class TepState:
    """Architectural state snapshot (for assertions in tests)."""

    acc: int
    op: int
    z: bool
    c: bool
    n: bool
    cycles: int


class Tep:
    """One Transition Execution Processor."""

    def __init__(
        self,
        arch: ArchConfig,
        program: List[Instruction],
        ports=None,
        name: str = "tep0",
    ) -> None:
        self.arch = arch
        self.name = name
        self.program = list(program)
        self.labels: Dict[str, int] = {}
        for index, instruction in enumerate(self.program):
            if instruction.label is not None:
                if instruction.label in self.labels:
                    raise TepError(f"duplicate label {instruction.label!r}")
                self.labels[instruction.label] = index
        self.ports = ports if ports is not None else SimplePorts()
        self.mask = (1 << arch.data_width) - 1
        self.sign_bit = 1 << (arch.data_width - 1)
        # architectural state
        self.acc = 0
        self.op = 0
        self.z = False
        self.c = False
        self.n = False
        self.registers: List[int] = [0] * max(1, arch.register_file_size)
        self.internal: Dict[int, int] = {}
        self.external: Dict[int, int] = {}
        self.condition_cache: List[bool] = [False] * 64
        self.events_raised: Set[int] = set()
        self.call_stack: List[int] = []
        self.cycles = 0
        self.instructions_executed = 0
        #: observability: ``None`` keeps run() on the zero-overhead path
        self.tracer = None
        self._trace_track: Optional[int] = None
        #: hot-path profiler (:class:`repro.obs.perfprof.PerfProfiler`);
        #: ``None`` keeps run() on the zero-overhead path
        self.profiler = None

    # -- state access -----------------------------------------------------
    def load_memory(self, values) -> None:
        """Install initial memory contents ((operand, word) pairs from the
        allocator, or a plain dict keyed by Mem/Reg operands)."""
        pairs = values.items() if hasattr(values, "items") else values
        for operand, word in pairs:
            self._write_location(operand, word)

    def read_location(self, operand: Operand) -> int:
        if isinstance(operand, Reg):
            return self.registers[operand.index]
        if isinstance(operand, Mem):
            store = (self.internal if operand.space is StorageClass.INTERNAL
                     else self.external)
            return store.get(operand.address, 0)
        raise TepError(f"cannot read location {operand!r}")

    def _write_location(self, operand: Operand, value: int) -> None:
        value &= self.mask
        if isinstance(operand, Reg):
            while operand.index >= len(self.registers):
                self.registers.append(0)
            self.registers[operand.index] = value
            return
        if isinstance(operand, Mem):
            store = (self.internal if operand.space is StorageClass.INTERNAL
                     else self.external)
            store[operand.address] = value
            return
        raise TepError(f"cannot write location {operand!r}")

    def flip_memory_bit(self, operand: Operand, bit: int) -> int:
        """Fault-injection hook: XOR one bit of a RAM/register word.

        Returns the word's new value."""
        value = self.read_location(operand) ^ (1 << bit)
        self._write_location(operand, value)
        return value & self.mask

    def read_variable(self, loc) -> int:
        """Read a (possibly multi-word) :class:`VarLoc` as a Python int."""
        value = 0
        for index, operand in enumerate(loc.words):
            value |= self.read_location(operand) << (index * self.arch.data_width)
        if loc.signed and value >> (loc.n_words * self.arch.data_width - 1):
            value -= 1 << (loc.n_words * self.arch.data_width)
        return value

    def write_variable(self, loc, value: int) -> None:
        for index, operand in enumerate(loc.words):
            self._write_location(
                operand, (value >> (index * self.arch.data_width)) & self.mask)

    def state(self) -> TepState:
        return TepState(self.acc, self.op, self.z, self.c, self.n, self.cycles)

    # -- operand evaluation ---------------------------------------------------
    def _value(self, operand: Operand) -> int:
        if isinstance(operand, Imm):
            return operand.value & self.mask
        if isinstance(operand, (Reg, Mem)):
            return self.read_location(operand)
        raise TepError(f"cannot evaluate operand {operand!r}")

    def _set_zn(self, value: int) -> None:
        self.z = value == 0
        self.n = bool(value & self.sign_bit)

    # -- execution ---------------------------------------------------------------
    def run(self, entry: str, max_cycles: int = 1_000_000) -> int:
        """Execute from *entry* until the matching RET/TRET; returns cycles
        consumed by this run.

        With a tracer attached (:attr:`tracer`), each run is recorded as one
        span on this TEP's track — entry label, cycles consumed, and the
        instruction retire count — timestamped in the TEP's own cumulative
        cycle time.  With a profiler attached (:attr:`profiler`), the run's
        host wall time is attributed to *entry* (and, at the ``opcode``
        level, to every executed instruction and CALLed routine).
        """
        tracer = self.tracer
        profiler = self.profiler
        if tracer is None and profiler is None:
            return self._run(entry, max_cycles)
        start_cycles = self.cycles
        start_retired = self.instructions_executed
        if profiler is None:
            consumed = self._run(entry, max_cycles)
        elif profiler.per_opcode:
            consumed = self._run_profiled(entry, max_cycles, profiler)
        else:
            started = profiler.clock()
            try:
                consumed = self._run(entry, max_cycles)
            finally:
                # aborted runs (watchdog / faults) still get attributed
                profiler.note_run(
                    entry, profiler.clock() - started,
                    self.cycles - start_cycles,
                    self.instructions_executed - start_retired)
        if tracer is not None:
            if self._trace_track is None:
                self._trace_track = tracer.track(self.name)
            tracer.span(
                self._trace_track, entry, start_cycles, consumed,
                {"instructions": self.instructions_executed - start_retired})
        return consumed

    def _run(self, entry: str, max_cycles: int) -> int:
        if entry not in self.labels:
            raise TepError(f"unknown entry label {entry!r}")
        start_cycles = self.cycles
        pc = self.labels[entry]
        depth = len(self.call_stack)
        while True:
            if pc < 0 or pc >= len(self.program):
                raise TepError(f"PC out of range: {pc}")
            instruction = self.program[pc]
            self.cycles += cycle_cost(instruction, self.arch)
            self.instructions_executed += 1
            if self.cycles - start_cycles > max_cycles:
                raise TepBudgetExceeded(
                    f"runaway execution in {entry!r} (> {max_cycles} cycles)")
            if instruction.op is Op.TRET:
                return self.cycles - start_cycles
            if instruction.op is Op.RET and len(self.call_stack) == depth:
                # the return matching this run()'s entry
                return self.cycles - start_cycles
            next_pc = self._execute(instruction, pc)
            if next_pc is None:
                raise TepError("unbalanced return")
            pc = next_pc

    def _run_profiled(self, entry: str, max_cycles: int, profiler) -> int:
        """The `_run` loop with per-instruction profiler attribution.

        Architecturally identical to :meth:`_run` — same fetch/charge/
        execute order, same fault surfaces — with each instruction wrapped
        in clock reads (opcode wall time) and a frame stack mirroring
        CALL/RET (per-routine self vs cumulative time).  Only reached when
        ``profiler.per_opcode``; expect whole-multiples of interpreter
        overhead.  Exceptions (budget overruns, execution faults) close the
        open frames first so partial runs still show up in the profile.
        """
        if entry not in self.labels:
            raise TepError(f"unknown entry label {entry!r}")
        clock = profiler.clock
        frames: List[list] = []
        profiler.open_frame(frames, entry)
        start_cycles = self.cycles
        pc = self.labels[entry]
        depth = len(self.call_stack)
        try:
            while True:
                if pc < 0 or pc >= len(self.program):
                    raise TepError(f"PC out of range: {pc}")
                instruction = self.program[pc]
                cost = cycle_cost(instruction, self.arch)
                self.cycles += cost
                self.instructions_executed += 1
                if self.cycles - start_cycles > max_cycles:
                    raise TepBudgetExceeded(
                        f"runaway execution in {entry!r} "
                        f"(> {max_cycles} cycles)")
                op = instruction.op
                if op is Op.TRET or (op is Op.RET
                                     and len(self.call_stack) == depth):
                    profiler.note_opcode(op.name, cost, 0)
                    frame = frames[-1]
                    frame[3] += cost
                    frame[4] += 1
                    return self.cycles - start_cycles
                started = clock()
                next_pc = self._execute(instruction, pc)
                elapsed = clock() - started
                profiler.note_opcode(op.name, cost, elapsed)
                frame = frames[-1]
                frame[1] += elapsed
                frame[3] += cost
                frame[4] += 1
                if op is Op.CALL:
                    # _execute validated the LabelRef operand already
                    profiler.open_frame(frames, instruction.operand.name)
                elif op is Op.RET:
                    profiler.close_frame(frames)
                if next_pc is None:
                    raise TepError("unbalanced return")
                pc = next_pc
        finally:
            while frames:
                profiler.close_frame(frames)

    def _branch_target(self, instruction: Instruction) -> int:
        operand = instruction.operand
        if isinstance(operand, LabelRef):
            if operand.name not in self.labels:
                raise TepError(f"undefined label {operand.name!r}")
            return self.labels[operand.name]
        raise TepError(f"bad jump operand {operand!r}")

    def _execute(self, instruction: Instruction, pc: int) -> Optional[int]:
        op = instruction.op
        operand = instruction.operand
        mask = self.mask

        if op is Op.NOP:
            return pc + 1
        if op is Op.LDA:
            self.acc = self._value(operand)
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.LDO:
            self.op = self._value(operand)
            return pc + 1
        if op is Op.TAO:
            self.op = self.acc
            return pc + 1
        if op is Op.STA:
            self._write_location(operand, self.acc)
            return pc + 1
        if op is Op.LDI:
            if not isinstance(operand, Mem):
                raise TepError("LDI needs a memory base")
            self.acc = self.read_location(
                Mem(operand.address + self.op, operand.space))
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.STI:
            if not isinstance(operand, Mem):
                raise TepError("STI needs a memory base")
            self._write_location(
                Mem(operand.address + self.op, operand.space), self.acc)
            return pc + 1

        if op in (Op.ADD, Op.ADC):
            source = self._value(operand)
            total = self.acc + source + (1 if op is Op.ADC and self.c else 0)
            self.c = total > mask
            self.acc = total & mask
            self._set_zn(self.acc)
            return pc + 1
        if op in (Op.SUB, Op.SBC, Op.CMP):
            source = self._value(operand)
            borrow = 1 if op is Op.SBC and self.c else 0
            total = self.acc - source - borrow
            self.c = total < 0
            result = total & mask
            if op is not Op.CMP:
                self.acc = result
            self.z = result == 0
            self.n = bool(result & self.sign_bit)
            return pc + 1
        if op in (Op.AND, Op.ORR, Op.XOR):
            source = self._value(operand)
            fn = {Op.AND: lambda a, b: a & b,
                  Op.ORR: lambda a, b: a | b,
                  Op.XOR: lambda a, b: a ^ b}[op]
            self.acc = fn(self.acc, source) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.NOT:
            self.acc = (~self.acc) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.NEG:
            if not self.arch.has_negator:
                raise TepError("NEG executed without a negator ALU")
            self.acc = (-self.acc) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.INC:
            self.acc = (self.acc + 1) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.DEC:
            self.acc = (self.acc - 1) & mask
            self._set_zn(self.acc)
            return pc + 1

        if op is Op.SHL:
            self.c = bool(self.acc & self.sign_bit)
            self.acc = (self.acc << 1) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.SHR:
            self.c = bool(self.acc & 1)
            self.acc >>= 1
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.RCL:
            carry_in = 1 if self.c else 0
            self.c = bool(self.acc & self.sign_bit)
            self.acc = ((self.acc << 1) | carry_in) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.RCR:
            carry_in = self.sign_bit if self.c else 0
            self.c = bool(self.acc & 1)
            self.acc = (self.acc >> 1) | carry_in
            self._set_zn(self.acc)
            return pc + 1
        if op in (Op.SHLN, Op.SHRN):
            if not self.arch.has_barrel_shifter:
                raise TepError(f"{op.name} executed without a barrel shifter")
            amount = self._value(operand)
            if op is Op.SHLN:
                self.acc = (self.acc << amount) & mask
            else:
                self.acc >>= amount
            self._set_zn(self.acc)
            return pc + 1

        if op in (Op.MUL, Op.DIV, Op.MOD):
            if not self.arch.has_muldiv:
                raise TepError(f"{op.name} executed without an M/D unit")
            source = self._value(operand)
            if op is Op.MUL:
                self.acc = (self.acc * source) & mask
            elif source == 0:
                self.acc = mask  # division by zero saturates
            elif op is Op.DIV:
                self.acc = (self.acc // source) & mask
            else:
                self.acc = (self.acc % source) & mask
            self._set_zn(self.acc)
            return pc + 1

        if op is Op.JMP:
            return self._branch_target(instruction)
        if op in (Op.JZ, Op.JNZ, Op.JC, Op.JNC, Op.JN, Op.JP):
            taken = {Op.JZ: self.z, Op.JNZ: not self.z,
                     Op.JC: self.c, Op.JNC: not self.c,
                     Op.JN: self.n, Op.JP: not self.n}[op]
            return self._branch_target(instruction) if taken else pc + 1
        if op in (Op.CBEQ, Op.CBNE):
            if not self.arch.has_comparator:
                raise TepError(f"{op.name} executed without a comparator")
            source = self._value(operand)
            equal = (self.acc & mask) == source
            taken = equal if op is Op.CBEQ else not equal
            if instruction.target is None:
                raise TepError(f"{op.name} without branch target")
            if taken:
                name = instruction.target.name
                if name not in self.labels:
                    raise TepError(f"undefined label {name!r}")
                return self.labels[name]
            return pc + 1
        if op is Op.CALL:
            self.call_stack.append(pc + 1)
            if len(self.call_stack) > 64:
                raise TepError("call stack overflow (recursion?)")
            return self._branch_target(instruction)
        if op is Op.RET:
            if not self.call_stack:
                return None
            return self.call_stack.pop()
        if op is Op.TRET:
            return None

        if op is Op.INP:
            if not isinstance(operand, PortRef):
                raise TepError("INP needs a port operand")
            self.acc = self.ports.read(operand.address) & mask
            self._set_zn(self.acc)
            return pc + 1
        if op is Op.OUTP:
            if not isinstance(operand, PortRef):
                raise TepError("OUTP needs a port operand")
            self.ports.write(operand.address, self.acc)
            return pc + 1

        if op in (Op.EVSET, Op.CSET, Op.CCLR, Op.CTST):
            if not isinstance(operand, SignalRef):
                raise TepError(f"{op.name} needs a signal operand")
            index = operand.index
            if op is Op.EVSET:
                self.events_raised.add(index)
            elif op is Op.CSET:
                self.condition_cache[index] = True
            elif op is Op.CCLR:
                self.condition_cache[index] = False
            else:
                self.acc = 1 if self.condition_cache[index] else 0
                self._set_zn(self.acc)
            return pc + 1

        if op is Op.CUSTOM:
            index = operand.value if isinstance(operand, Imm) else -1
            if not 0 <= index < len(self.arch.custom_instructions):
                raise TepError(f"undefined CUSTOM #{index}")
            custom = self.arch.custom_instructions[index]
            operands = [self.acc, self.op] + list(self.registers)
            self.acc = evaluate_signature(custom.signature, operands, mask)
            self._set_zn(self.acc)
            return pc + 1

        raise TepError(f"unimplemented opcode {op}")
