"""The PSCP machine: TEPs, configuration register, scheduler, ports, timers.

Public API::

    from repro.pscp import PscpMachine, Tep, DeadlineMonitor
"""

from repro.pscp.condcache import ConditionCacheBridge
from repro.pscp.cr import ConfigurationRegister
from repro.pscp.machine import (
    MachineError,
    MachineStep,
    PscpMachine,
    build_transition_stubs,
    stub_wcet,
)
from repro.pscp.ports import PortBus, PortError
from repro.pscp.scheduler import (
    DISPATCH_OVERHEAD_CYCLES,
    SLA_OVERHEAD_CYCLES,
    DispatchPlan,
    round_robin_dispatch,
)
from repro.pscp.tep import SimplePorts, Tep, TepError, TepState
from repro.pscp.timers import InterruptController, Timer, TimerBank
from repro.pscp.trace import DeadlineMonitor, DeadlineReport, EventRecord

__all__ = [
    "ConditionCacheBridge", "ConfigurationRegister",
    "DISPATCH_OVERHEAD_CYCLES", "DeadlineMonitor",
    "DeadlineReport", "DispatchPlan", "EventRecord", "InterruptController",
    "MachineError", "MachineStep", "PortBus", "PortError", "PscpMachine",
    "SLA_OVERHEAD_CYCLES", "SimplePorts", "Tep", "TepError", "TepState",
    "Timer", "TimerBank", "build_transition_stubs", "round_robin_dispatch",
    "stub_wcet",
]
