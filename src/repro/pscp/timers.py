"""Timers and interrupt-style events (the paper's "future work", section 6).

"Future work will include … the addition of timers and interrupt
capabilities."  Both are well-defined enough to provide behind explicit
opt-in:

* :class:`Timer` — a hardware counter that raises an event into the CR every
  ``period`` reference-clock cycles (exactly how the SMD example's motor
  counters "issue a pulse on zero");
* :class:`InterruptController` — marks selected events as *preemptive*:
  when one arrives, the scheduler processes its configuration cycle with
  only the interrupt-consuming transitions first (modelled as event
  prioritization, since configuration cycles are atomic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple


@dataclass
class Timer:
    """A free-running down-counter that fires an event on zero."""

    event: str
    period: int
    #: first firing offset; defaults to one full period
    phase: Optional[int] = None
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("timer period must be positive")
        self._next = self.phase if self.phase is not None else self.period

    def advance(self, now: int, until: int) -> List[int]:
        """Firing times in the half-open interval (now, until]."""
        if not self.enabled:
            return []
        fires = []
        while self._next <= until:
            if self._next > now:
                fires.append(self._next)
            self._next += self.period
        return fires

    def reset(self, at_time: int = 0) -> None:
        self._next = at_time + (self.phase if self.phase is not None
                                else self.period)

    # -- checkpoint/restore ------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-serializable counter state (for machine snapshots)."""
        return {"event": self.event, "period": self.period,
                "enabled": self.enabled, "next": self._next}

    def restore_state(self, state: dict) -> None:
        if state["event"] != self.event or state["period"] != self.period:
            raise ValueError(
                f"timer state for {state['event']!r}/{state['period']} "
                f"cannot restore timer {self.event!r}/{self.period}")
        self.enabled = state["enabled"]
        self._next = state["next"]


class TimerBank:
    """A set of timers stepped together with the machine clock."""

    def __init__(self, timers: Iterable[Timer] = ()) -> None:
        self.timers: List[Timer] = list(timers)

    def add(self, timer: Timer) -> Timer:
        self.timers.append(timer)
        return timer

    def events_between(self, now: int, until: int) -> List[Tuple[int, str]]:
        """(time, event) pairs fired in (now, until], time-ordered."""
        fired = []
        for timer in self.timers:
            for time in timer.advance(now, until):
                fired.append((time, timer.event))
        return sorted(fired)

    def pending_events(self, now: int, until: int) -> Set[str]:
        return {event for _, event in self.events_between(now, until)}


class InterruptController:
    """Priority filter for preemptive events.

    When any registered interrupt event is present in a cycle's sample, the
    controller masks all non-interrupt events for that cycle so the
    interrupt's transitions run with minimum latency; the masked events are
    replayed in the following cycle (the hardware analogue: the interrupt
    logic holds the normal event lines for one configuration cycle).
    """

    def __init__(self, interrupt_events: Iterable[str]) -> None:
        self.interrupt_events = set(interrupt_events)
        self._held: Set[str] = set()

    def filter(self, events: Iterable[str]) -> Set[str]:
        events = set(events) | self._held
        self._held = set()
        arrived_interrupts = events & self.interrupt_events
        if arrived_interrupts and events - self.interrupt_events:
            self._held = events - self.interrupt_events
            return arrived_interrupts
        return events

    @property
    def held_events(self) -> Set[str]:
        return set(self._held)
