"""Fluent programmatic construction of charts.

The textual format (:mod:`repro.statechart.parser`) is the paper's exchange
format; tests, examples and the SMD workload also want a concise Python API::

    b = ChartBuilder("blinker")
    b.event("TICK", period=100)
    with b.or_state("Top", default="Off"):
        b.basic("Off").transition("On", label="TICK/LightOn()")
        b.basic("On").transition("Off", label="TICK/LightOff()")
    chart = b.build()

The builder validates the finished chart before returning it.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional

from repro.statechart.labels import parse_label
from repro.statechart.model import (
    Chart,
    ChartError,
    PortDirection,
    PortKind,
    StateKind,
)
from repro.statechart.validate import validate_chart


class StateHandle:
    """Handle returned for each declared state; adds transitions fluently."""

    def __init__(self, builder: "ChartBuilder", name: str) -> None:
        self._builder = builder
        self.name = name

    def transition(self, target: str, label: str = "",
                   wcet: Optional[int] = None) -> "StateHandle":
        """Add a transition from this state.  Returns self for chaining."""
        self._builder._pending.append((self.name, target, label, wcet))
        return self


class ChartBuilder:
    """Builds a :class:`Chart` with ``with``-scoped composite states."""

    def __init__(self, name: str) -> None:
        self._chart = Chart(name)
        self._stack: List[str] = [self._chart.root]
        self._pending: List[tuple] = []
        self._first_toplevel: Optional[str] = None

    # -- declarations ----------------------------------------------------
    def event(self, name: str, period: Optional[int] = None,
              port: Optional[str] = None, width: int = 1) -> "ChartBuilder":
        self._chart.add_event(name, width=width, port=port, period=period)
        return self

    def condition(self, name: str, initial: bool = False,
                  port: Optional[str] = None, width: int = 1) -> "ChartBuilder":
        self._chart.add_condition(name, width=width, port=port, initial=initial)
        return self

    def port(self, name: str, kind: PortKind, width: int = 1,
             address: Optional[int] = None,
             direction: PortDirection = PortDirection.INPUT) -> "ChartBuilder":
        self._chart.add_port(name, kind, width=width, address=address,
                             direction=direction)
        return self

    # -- states ------------------------------------------------------------
    def _add(self, name: str, kind: StateKind, default: Optional[str] = None,
             ref: Optional[str] = None) -> StateHandle:
        parent = self._stack[-1]
        self._chart.add_state(name, kind, parent=parent, default=default, ref=ref)
        if parent == self._chart.root and self._first_toplevel is None:
            self._first_toplevel = name
        return StateHandle(self, name)

    def basic(self, name: str) -> StateHandle:
        """Declare a basic (leaf) state in the current scope."""
        return self._add(name, StateKind.BASIC)

    def ref(self, name: str, chart_name: str) -> StateHandle:
        """Declare an ``@Name``-style reference to another chart."""
        return self._add(name, StateKind.REF, ref=chart_name)

    @contextlib.contextmanager
    def or_state(self, name: str, default: Optional[str] = None) -> Iterator[StateHandle]:
        """Open an OR (exclusive) composite; children declared inside."""
        handle = self._add(name, StateKind.OR, default=default)
        self._stack.append(name)
        try:
            yield handle
        finally:
            self._stack.pop()
        state = self._chart.states[name]
        if state.default is None and state.children:
            state.default = state.children[0]

    @contextlib.contextmanager
    def and_state(self, name: str) -> Iterator[StateHandle]:
        """Open an AND (parallel) composite; regions declared inside."""
        handle = self._add(name, StateKind.AND)
        self._stack.append(name)
        try:
            yield handle
        finally:
            self._stack.pop()

    # -- finish -------------------------------------------------------------
    def build(self, validate: bool = True) -> Chart:
        """Resolve pending transitions, validate and return the chart."""
        if self._first_toplevel is not None:
            self._chart.states[self._chart.root].default = self._first_toplevel
        for source, target, label_text, wcet in self._pending:
            label = parse_label(label_text)
            self._chart.add_transition(
                source, target,
                trigger=label.trigger, guard=label.guard, action=label.action,
                label=label_text, wcet_override=wcet)
        self._pending = []
        if validate:
            validate_chart(self._chart)
        return self._chart
