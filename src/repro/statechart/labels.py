"""Parsing of transition label strings.

The figures of the paper use the classic statechart label syntax::

    trigger [guard] / action

with every part optional:

* ``INIT or ALLRESET/InitializeAll()``       trigger + action
* ``[DATA_VALID]/GetByte()``                 guard + action
* ``X_PULSE/DeltaT(MX)``                     trigger + action
* ``[MOVEMENT]``                             guard only
* ``END_MOVE``                               trigger only
* ``/StartMotor(MX, XParams)``               action only (completion)

The trigger and guard parts are boolean expressions over event/condition
names (:mod:`repro.statechart.expr`).  The action part is kept as call text;
it is resolved against the routine library written in the intermediate C
dialect by the code-generation flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.statechart.expr import Expr, ExprError, parse_expr


class LabelError(Exception):
    """Raised for malformed transition labels."""


@dataclass(frozen=True)
class Label:
    """The three parsed parts of a transition label."""

    trigger: Optional[Expr]
    guard: Optional[Expr]
    action: Optional[str]

    def __str__(self) -> str:
        parts = []
        if self.trigger is not None:
            parts.append(str(self.trigger))
        if self.guard is not None:
            parts.append(f"[{self.guard}]")
        if self.action:
            parts.append(f"/{self.action}")
        return " ".join(parts)


def _split_action(text: str) -> Tuple[str, Optional[str]]:
    """Split at the first '/' that is outside brackets and parentheses."""
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "/" and depth == 0:
            return text[:i], text[i + 1:].strip()
    return text, None


def _split_guard(text: str) -> Tuple[str, Optional[str]]:
    """Split ``trigger [guard]`` into its two pieces.

    The guard is the last top-level ``[...]`` group; everything before it is
    the trigger expression.
    """
    text = text.strip()
    if not text.endswith("]"):
        return text, None
    depth = 0
    for i in range(len(text) - 1, -1, -1):
        ch = text[i]
        if ch == "]":
            depth += 1
        elif ch == "[":
            depth -= 1
            if depth == 0:
                return text[:i].strip(), text[i + 1:-1].strip()
    raise LabelError(f"unbalanced brackets in label {text!r}")


def parse_label(text: str) -> Label:
    """Parse a transition label into (trigger, guard, action)."""
    text = text.strip()
    if not text:
        return Label(None, None, None)
    head, action = _split_action(text)
    trigger_text, guard_text = _split_guard(head.strip())
    try:
        trigger = parse_expr(trigger_text) if trigger_text else None
        guard = parse_expr(guard_text) if guard_text else None
    except ExprError as exc:
        raise LabelError(f"bad label {text!r}: {exc}") from exc
    if action == "":
        action = None
    return Label(trigger, guard, action)


def action_routine_name(action: str) -> str:
    """Extract the routine name from action call text like ``DeltaT(MX)``.

    Actions without parentheses (bare routine names) are accepted too.
    """
    action = action.strip()
    paren = action.find("(")
    name = action if paren < 0 else action[:paren]
    name = name.strip()
    if not name.replace("_", "a").isalnum():
        raise LabelError(f"bad action call {action!r}")
    return name


def action_arguments(action: str) -> Tuple[str, ...]:
    """Extract the textual argument list from action call text."""
    action = action.strip()
    start = action.find("(")
    if start < 0:
        return ()
    if not action.endswith(")"):
        raise LabelError(f"bad action call {action!r}")
    inner = action[start + 1:-1].strip()
    if not inner:
        return ()
    args = []
    depth = 0
    current = []
    for ch in inner:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    args.append("".join(current).strip())
    return tuple(args)
