"""Parser for the textual statechart format (Fig. 2a).

The paper introduces a textual representation that is "straightforward to
generate from statechart pictures" and is the starting point of the hardware
and software generation process.  The fragment shown in Fig. 2a::

    basicstate Errstate {
      transition {
        target Idle1;
        label "INIT or ALLRESET/InitializeAll()"
      }
    }
    andstate Operation {
      contains DataPreparation, ReachPosition;
      ...
    }
    orstate DataPreparation {
      contains OpcodeReady, EmptyBuf, Bounds, NoData;
      default OpcodeReady;
    }

defines the grammar we implement.  Beyond the constructs visible in the
figure, the format here adds the declarations the rest of the flow needs and
that the paper keeps on the C side (Fig. 2b):

* ``chart NAME;`` — names the chart (optional; defaults to the file stem).
* ``event NAME [period N] [port P];`` — declares an event, optionally with an
  arrival-period timing constraint in reference-clock cycles (Table 2) and a
  binding to an external port.
* ``condition NAME [initial true|false] [port P];``
* ``port NAME : event|condition|data width N [address N] [in|out|inout];``
* ``refstate @NAME { refers CHART; }`` — the ``@Name`` chart references of
  Figs. 5/6.
* inside ``transition { ... }``: an optional ``wcet N;`` giving the explicit
  timing constraint used when a routine length cannot be derived (section 4).

States not contained by any other state become children of an implicit root
OR-state; the first such state is the root's default.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.statechart.expr import ExprError
from repro.statechart.labels import Label, LabelError, parse_label
from repro.statechart.model import (
    Chart,
    ChartError,
    PortDirection,
    PortKind,
    StateKind,
)


class ParseError(Exception):
    """Raised with a line number on malformed textual statecharts."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+)
  | (?P<name>@?[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[{};:,])
    """,
    re.VERBOSE,
)


@dataclass
class _Token:
    kind: str
    value: str
    line: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup or ""
        value = match.group()
        line += value.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, value, line))
    return tokens


_STATE_KEYWORDS = {
    "basicstate": StateKind.BASIC,
    "orstate": StateKind.OR,
    "andstate": StateKind.AND,
    "refstate": StateKind.REF,
}

_PORT_KINDS = {
    "event": PortKind.EVENT,
    "condition": PortKind.CONDITION,
    "data": PortKind.DATA,
}

_PORT_DIRECTIONS = {
    "in": PortDirection.INPUT,
    "out": PortDirection.OUTPUT,
    "inout": PortDirection.BIDIRECTIONAL,
}


@dataclass
class _StateDecl:
    name: str
    kind: StateKind
    line: int
    contains: List[str] = field(default_factory=list)
    default: Optional[str] = None
    refers: Optional[str] = None
    transitions: List[Tuple[str, str, Optional[int], int]] = field(default_factory=list)
    # transitions: (target, label text, wcet override, line)


class _ChartParser:
    def __init__(self, tokens: List[_Token], name: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.chart_name = name
        self.state_decls: Dict[str, _StateDecl] = {}
        self.order: List[str] = []
        self.events: List[Tuple[str, Optional[int], Optional[str]]] = []
        self.conditions: List[Tuple[str, bool, Optional[str]]] = []
        self.ports: List[Tuple[str, PortKind, int, Optional[int], PortDirection]] = []
        self.properties: List[Tuple[str, int]] = []

    # -- token helpers -------------------------------------------------
    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, kind: Optional[str] = None, value: Optional[str] = None) -> _Token:
        token = self.peek()
        if token is None:
            last_line = self.tokens[-1].line if self.tokens else 1
            raise ParseError("unexpected end of input", last_line)
        if kind is not None and token.kind != kind:
            raise ParseError(f"expected {kind}, got {token.value!r}", token.line)
        if value is not None and token.value != value:
            raise ParseError(f"expected {value!r}, got {token.value!r}", token.line)
        self.pos += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token.value == value:
            self.pos += 1
            return True
        return False

    # -- grammar productions -------------------------------------------
    def parse(self) -> Chart:
        while self.peek() is not None:
            token = self.peek()
            assert token is not None
            if token.value in _STATE_KEYWORDS:
                self.parse_state()
            elif token.value == "chart":
                self.take()
                self.chart_name = self.take("name").value
                self.accept(";")
            elif token.value == "event":
                self.parse_event()
            elif token.value == "condition":
                self.parse_condition()
            elif token.value == "port":
                self.parse_port()
            elif token.value == "property":
                self.parse_property()
            else:
                raise ParseError(f"unexpected token {token.value!r}", token.line)
        return self.build()

    def parse_state(self) -> None:
        keyword = self.take("name")
        kind = _STATE_KEYWORDS[keyword.value]
        name_token = self.take("name")
        name = name_token.value
        if name in self.state_decls:
            raise ParseError(f"duplicate state {name!r}", name_token.line)
        decl = _StateDecl(name, kind, name_token.line)
        self.state_decls[name] = decl
        self.order.append(name)
        self.take("punct", "{")
        while not self.accept("}"):
            item = self.take("name")
            if item.value == "contains":
                decl.contains.append(self.take("name").value)
                while self.accept(","):
                    decl.contains.append(self.take("name").value)
                self.take("punct", ";")
            elif item.value == "default":
                decl.default = self.take("name").value
                self.take("punct", ";")
            elif item.value == "refers":
                decl.refers = self.take("name").value
                self.take("punct", ";")
            elif item.value == "transition":
                self.parse_transition(decl)
            else:
                raise ParseError(f"unexpected {item.value!r} in state body", item.line)

    def parse_transition(self, decl: _StateDecl) -> None:
        self.take("punct", "{")
        target: Optional[str] = None
        label = ""
        wcet: Optional[int] = None
        line = self.tokens[self.pos - 1].line
        while not self.accept("}"):
            item = self.take("name")
            if item.value == "target":
                target = self.take("name").value
                self.accept(";")
            elif item.value == "label":
                raw = self.take("string").value
                label = raw[1:-1].replace('\\"', '"')
                self.accept(";")
            elif item.value == "wcet":
                wcet = int(self.take("number").value)
                self.accept(";")
            else:
                raise ParseError(
                    f"unexpected {item.value!r} in transition body", item.line)
        if target is None:
            raise ParseError("transition without target", line)
        decl.transitions.append((target, label, wcet, line))

    def parse_event(self) -> None:
        self.take()  # 'event'
        name = self.take("name").value
        period: Optional[int] = None
        port: Optional[str] = None
        while not self.accept(";"):
            item = self.take("name")
            if item.value == "period":
                period = int(self.take("number").value)
            elif item.value == "port":
                port = self.take("name").value
            else:
                raise ParseError(f"unexpected {item.value!r} in event", item.line)
        self.events.append((name, period, port))

    def parse_condition(self) -> None:
        self.take()  # 'condition'
        name = self.take("name").value
        initial = False
        port: Optional[str] = None
        while not self.accept(";"):
            item = self.take("name")
            if item.value == "initial":
                initial = self.take("name").value == "true"
            elif item.value == "port":
                port = self.take("name").value
            else:
                raise ParseError(f"unexpected {item.value!r} in condition", item.line)
        self.conditions.append((name, initial, port))

    def parse_property(self) -> None:
        """``property "never A while B";`` — a model-checking property.

        The chart stores the quoted text verbatim; the checking grammar is
        owned by :mod:`repro.analysis.bmc` (docs/CHECKING.md).
        """
        self.take()  # 'property'
        token = self.take("string")
        text = token.value[1:-1].replace('\\"', '"')
        self.accept(";")
        self.properties.append((text, token.line))

    def parse_port(self) -> None:
        self.take()  # 'port'
        name = self.take("name").value
        self.take("punct", ":")
        kind_token = self.take("name")
        if kind_token.value not in _PORT_KINDS:
            raise ParseError(f"bad port kind {kind_token.value!r}", kind_token.line)
        kind = _PORT_KINDS[kind_token.value]
        width = 1
        address: Optional[int] = None
        direction = PortDirection.INPUT
        while not self.accept(";"):
            item = self.take("name")
            if item.value == "width":
                width = int(self.take("number").value)
            elif item.value == "address":
                address = int(self.take("number").value)
            elif item.value in _PORT_DIRECTIONS:
                direction = _PORT_DIRECTIONS[item.value]
            else:
                raise ParseError(f"unexpected {item.value!r} in port", item.line)
        self.ports.append((name, kind, width, address, direction))

    # -- chart construction ---------------------------------------------
    def build(self) -> Chart:
        contained = {child
                     for decl in self.state_decls.values()
                     for child in decl.contains}
        for child in contained:
            if child not in self.state_decls:
                line = next(d.line for d in self.state_decls.values()
                            if child in d.contains)
                raise ParseError(f"contained state {child!r} is not declared", line)
        roots = [name for name in self.order if name not in contained]
        if not roots:
            raise ParseError("no root state (containment cycle?)", 1)

        chart = Chart(self.chart_name)
        chart.states[chart.root].default = roots[0]

        added: Dict[str, bool] = {}

        def add(name: str, parent: str) -> None:
            if added.get(name):
                raise ParseError(
                    f"state {name!r} contained more than once",
                    self.state_decls[name].line)
            decl = self.state_decls[name]
            chart.add_state(name, decl.kind, parent=parent,
                            default=decl.default, ref=decl.refers,
                            line=decl.line)
            added[name] = True
            for child in decl.contains:
                add(child, name)

        for root in roots:
            add(root, chart.root)

        for name, period, port in self.events:
            chart.add_event(name, port=port, period=period)
        for name, initial, port in self.conditions:
            chart.add_condition(name, port=port, initial=initial)
        for name, kind, width, address, direction in self.ports:
            chart.add_port(name, kind, width=width, address=address,
                           direction=direction)
        for text, line in self.properties:
            chart.add_property(text, line=line)

        for name in self.order:
            decl = self.state_decls[name]
            for target, label_text, wcet, line in decl.transitions:
                if target not in self.state_decls:
                    raise ParseError(f"unknown target state {target!r}", line)
                try:
                    label = parse_label(label_text)
                except (LabelError, ExprError) as exc:
                    raise ParseError(
                        f"bad transition label {label_text!r}: {exc}",
                        line) from exc
                try:
                    chart.add_transition(
                        name, target,
                        trigger=label.trigger, guard=label.guard,
                        action=label.action, label=label_text,
                        wcet_override=wcet, line=line)
                except ChartError as exc:
                    raise ParseError(
                        f"bad transition {name!r} -> {target!r}: {exc}",
                        line) from exc
        return chart


def parse_chart(text: str, name: str = "chart") -> Chart:
    """Parse textual-statechart *text* into a :class:`Chart`."""
    tokens = _tokenize(text)
    return _ChartParser(tokens, name).parse()


def emit_chart(chart: Chart) -> str:
    """Render *chart* back to the textual format (round-trip of Fig. 2a)."""
    lines: List[str] = [f"chart {chart.name};", ""]
    for event in chart.events.values():
        parts = [f"event {event.name}"]
        if event.period is not None:
            parts.append(f"period {event.period}")
        if event.port is not None:
            parts.append(f"port {event.port}")
        lines.append(" ".join(parts) + ";")
    for condition in chart.conditions.values():
        parts = [f"condition {condition.name}"]
        if condition.initial:
            parts.append("initial true")
        if condition.port is not None:
            parts.append(f"port {condition.port}")
        lines.append(" ".join(parts) + ";")
    for port in chart.ports.values():
        direction = {v: k for k, v in _PORT_DIRECTIONS.items()}[port.direction]
        kind = {v: k for k, v in _PORT_KINDS.items()}[port.kind]
        address = f" address {port.address}" if port.address is not None else ""
        lines.append(
            f"port {port.name} : {kind} width {port.width}{address} {direction};")
    for decl in chart.properties:
        escaped_text = decl.text.replace('"', '\\"')
        lines.append(f'property "{escaped_text}";')
    lines.append("")

    keyword = {v: k for k, v in _STATE_KEYWORDS.items()}

    def emit_state(name: str) -> None:
        state = chart.states[name]
        lines.append(f"{keyword[state.kind]} {name} {{")
        if state.children:
            lines.append("  contains " + ", ".join(state.children) + ";")
        if state.default is not None:
            lines.append(f"  default {state.default};")
        if state.ref is not None:
            lines.append(f"  refers {state.ref};")
        for transition in state.transitions:
            lines.append("  transition {")
            lines.append(f"    target {transition.target};")
            label = transition.label or str(Label(
                transition.trigger, transition.guard, transition.action))
            escaped = label.replace('"', '\\"')
            lines.append(f'    label "{escaped}";')
            if transition.wcet_override is not None:
                lines.append(f"    wcet {transition.wcet_override};")
            lines.append("  }")
        lines.append("}")

    for name in chart.states[chart.root].children:
        for member in chart.subtree(name):
            emit_state(member)
    return "\n".join(lines) + "\n"
