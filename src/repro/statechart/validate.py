"""Well-formedness checks for charts.

These run before any synthesis or analysis step; each violation is collected
so a designer sees every problem at once (the paper's frontend, the Statechart
Structural Analyzer, plays this role).
"""

from __future__ import annotations

from typing import List

from repro.statechart.model import Chart, ChartError, StateKind


def chart_problems(chart: Chart) -> List[str]:
    """Return a list of human-readable well-formedness violations.

    Thin wrapper over the diagnostic framework
    (:func:`repro.analysis.chart_lint.wellformedness`) keeping the
    historical list-of-strings API; the diagnostics carry stable codes
    (PSC101..PSC110), locations and fix hints on top of these messages.
    """
    from repro.analysis.chart_lint import wellformedness

    return [diagnostic.message for diagnostic in wellformedness(chart)]


def chart_warnings(chart: Chart) -> List[str]:
    """Non-fatal design smells: unreachable states, unused signals.

    The paper's frontend (the Statechart Structural Analyzer) reports these
    rather than rejecting the chart — an unreachable state still synthesizes,
    it just wastes SLA terms and CR bits.  Wraps
    :func:`repro.analysis.chart_lint.design_smells` (codes PSC150..PSC152).
    """
    from repro.analysis.chart_lint import design_smells

    return [diagnostic.message for diagnostic in design_smells(chart)]


def validate_chart(chart: Chart) -> None:
    """Raise :class:`ChartError` listing all problems, if any."""
    problems = chart_problems(chart)
    if problems:
        raise ChartError(
            f"chart {chart.name!r} is not well-formed:\n  " +
            "\n  ".join(problems))


def resolve_references(chart: Chart, library: dict) -> Chart:
    """Inline every REF state from *library* (chart name -> Chart).

    The referenced chart's top-level structure is copied under the REF
    state's parent position: the REF state becomes an OR state whose children
    are fresh copies of the referenced chart's top-level states.  Name clashes
    are disambiguated by prefixing with the REF state's name.
    """
    from repro.statechart.model import State, Transition

    refs = [s for s in chart.states.values() if s.kind is StateKind.REF]
    for ref_state in refs:
        if ref_state.ref is None or ref_state.ref not in library:
            raise ChartError(
                f"cannot resolve reference {ref_state.name!r} -> {ref_state.ref!r}")
        sub = library[ref_state.ref]

        def local(name: str) -> str:
            return name if name not in chart.states else f"{ref_state.name}.{name}"

        rename = {sub.root: ref_state.name}
        for name in sub.descendants(sub.root):
            rename[name] = local(name)

        ref_state.kind = StateKind.OR
        ref_state.ref = None
        sub_root = sub.states[sub.root]
        ref_state.default = rename[sub_root.default or sub_root.children[0]]

        for name in sub.descendants(sub.root):
            original = sub.states[name]
            copy = State(
                rename[name], original.kind,
                children=[rename[c] for c in original.children],
                default=rename[original.default] if original.default else None,
                parent=rename[original.parent] if original.parent else None,
                ref=original.ref)
            chart.states[copy.name] = copy
        ref_state.children = [rename[c] for c in sub_root.children]

        for transition in sub.transitions:
            chart.add_transition(
                rename[transition.source], rename[transition.target],
                trigger=transition.trigger, guard=transition.guard,
                action=transition.action, label=transition.label,
                wcet_override=transition.wcet_override)
        for event in sub.events.values():
            if event.name not in chart.events and event.name not in chart.conditions:
                chart.add_event(event.name, width=event.width, port=event.port,
                                period=event.period)
        for condition in sub.conditions.values():
            if (condition.name not in chart.conditions
                    and condition.name not in chart.events):
                chart.add_condition(condition.name, width=condition.width,
                                    port=condition.port, initial=condition.initial)
    return chart
