"""Execution semantics for extended statecharts.

The paper defers the precise semantics to its reference [1] (the EURO-DAC'96
SLA mapping); what it fixes is the *hardware contract* of section 3.1:

* external events are sampled into the Configuration Register (CR) at the
  beginning of a configuration cycle and reset at the end — an event lives
  exactly one cycle;
* conditions persist until rewritten;
* the SLA selects the enabled transitions from the CR contents;
* the selected transitions execute (possibly in parallel on several TEPs),
  may raise new events and rewrite conditions, and their state updates are
  committed under guard-signal control;
* then the next configuration cycle begins.

We implement the conventional STATEMATE-like synchronous step on top of that
contract:

* a transition is enabled when its source state is in the active
  configuration and its trigger and guard evaluate true against the CR;
* two enabled transitions *conflict* when their scopes are ancestrally
  related (they would rearrange overlapping parts of the configuration);
  conflicts are resolved in favour of the transition with the **outermost
  scope** (structural priority), ties by declaration order — this mirrors the
  exclusivity the SLA's guard signals G0..Gm enforce;
* non-conflicting transitions (parallel regions) fire in the same cycle.

The interpreter is the executable reference model: the SLA synthesizer's PLA
and the full PSCP machine are both tested for equivalence against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.statechart.model import Chart, StateKind, Transition

#: Signature of an action handler: it receives the interpreter and the
#: transition being executed, and may call :meth:`Interpreter.raise_event`
#: and :meth:`Interpreter.set_condition`.
ActionHandler = Callable[["Interpreter", Transition], None]


@dataclass
class StepResult:
    """Everything that happened in one configuration cycle."""

    fired: List[Transition]
    entered: FrozenSet[str]
    exited: FrozenSet[str]
    configuration: FrozenSet[str]
    events_consumed: FrozenSet[str]
    events_raised: FrozenSet[str]

    @property
    def quiescent(self) -> bool:
        """True if nothing fired this cycle."""
        return not self.fired


def select_transitions(chart: Chart,
                       enabled: List[Transition]) -> List[Transition]:
    """Resolve conflicts among *enabled* transitions: outermost scope wins,
    ties by declaration order.

    This is the single implementation of the SLA's guard-signal exclusivity;
    the interpreter and the bounded model checker
    (:mod:`repro.analysis.bmc`) both call it so their step relations cannot
    drift apart.
    """
    ranked = sorted(
        enabled,
        key=lambda t: (chart.depth(chart.transition_scope(t)), t.index))
    chosen: List[Transition] = []
    scopes: List[str] = []
    for transition in ranked:
        scope = chart.transition_scope(transition)
        if any(chart.is_ancestor(s, scope) or chart.is_ancestor(scope, s)
               for s in scopes):
            continue
        chosen.append(transition)
        scopes.append(scope)
    chosen.sort(key=lambda t: t.index)
    return chosen


class Interpreter:
    """Reference interpreter for a chart.

    Parameters
    ----------
    chart:
        The chart to execute (must be well-formed; REF states resolved).
    actions:
        Optional mapping from routine name (e.g. ``"GetByte"``) to a Python
        handler executed when a transition with that action fires.  Unmapped
        actions are recorded but have no effect — exactly like a TEP routine
        that touches only local data.
    """

    def __init__(self, chart: Chart,
                 actions: Optional[Dict[str, ActionHandler]] = None) -> None:
        self.chart = chart
        self.actions = dict(actions or {})
        self.configuration: FrozenSet[str] = chart.initial_configuration()
        self.condition_values: Dict[str, bool] = {
            name: condition.initial
            for name, condition in chart.conditions.items()}
        #: events raised internally during the current step; they become
        #: visible in the *next* configuration cycle (CR write port).
        self._raised: Set[str] = set()
        self.cycle = 0
        self.action_log: List[str] = []

    # -- CR access used by action handlers --------------------------------
    def raise_event(self, name: str) -> None:
        """Raise an internal event; visible next configuration cycle."""
        if name not in self.chart.events:
            raise KeyError(f"unknown event {name!r}")
        self._raised.add(name)

    def set_condition(self, name: str, value: bool) -> None:
        """Write a condition (TEPs do this through their condition caches)."""
        if name not in self.chart.conditions:
            raise KeyError(f"unknown condition {name!r}")
        self.condition_values[name] = bool(value)

    def condition(self, name: str) -> bool:
        return self.condition_values[name]

    def in_state(self, name: str) -> bool:
        return name in self.configuration

    # -- stepping -----------------------------------------------------------
    def asserted_signals(self, events: Iterable[str]) -> Set[str]:
        """The set of names true in the CR for a given external event set."""
        asserted = set(events) | self._raised
        asserted.update(n for n, v in self.condition_values.items() if v)
        return asserted

    def enabled(self, events: Iterable[str]) -> List[Transition]:
        """All transitions enabled in the current configuration."""
        asserted = self.asserted_signals(events)
        result = []
        for transition in self.chart.transitions:
            if transition.source not in self.configuration:
                continue
            if transition.trigger is not None and not transition.trigger.evaluate(asserted):
                continue
            if transition.guard is not None and not transition.guard.evaluate(asserted):
                continue
            result.append(transition)
        return result

    def select(self, enabled: List[Transition]) -> List[Transition]:
        """Resolve conflicts: outermost scope wins, then declaration order."""
        return select_transitions(self.chart, enabled)

    def step(self, events: Iterable[str] = ()) -> StepResult:
        """Run one configuration cycle with the given external events."""
        events = set(events)
        unknown = events - set(self.chart.events)
        if unknown:
            raise KeyError(f"unknown external events {sorted(unknown)!r}")
        # Events raised by the previous cycle's TEPs are sampled together
        # with this cycle's external events.
        visible_events = events | self._raised
        self._raised = set()

        enabled = self.enabled(visible_events)
        fired = self.select(enabled)

        exited: Set[str] = set()
        entered: Set[str] = set()
        configuration = set(self.configuration)
        for transition in fired:
            exit_set = self.chart.exit_set(transition, frozenset(configuration))
            entry_set = self.chart.entry_set(transition)
            configuration -= exit_set
            configuration |= entry_set
            exited |= exit_set
            entered |= entry_set

        self.configuration = frozenset(configuration)

        for transition in fired:
            if transition.action:
                self.action_log.append(transition.action)
                from repro.statechart.labels import action_routine_name
                handler = self.actions.get(action_routine_name(transition.action))
                if handler is not None:
                    handler(self, transition)

        consumed = frozenset(
            name for transition in fired for name in transition.names_consumed()
            if name in self.chart.events and name in visible_events)
        self.cycle += 1
        return StepResult(
            fired=fired,
            entered=frozenset(entered),
            exited=frozenset(exited),
            configuration=self.configuration,
            events_consumed=consumed,
            events_raised=frozenset(self._raised),
        )

    def run(self, event_trace: Iterable[Iterable[str]]) -> List[StepResult]:
        """Run one step per element of *event_trace*; return all results."""
        return [self.step(events) for events in event_trace]

    def reset(self) -> None:
        """Return to the initial configuration and condition values."""
        self.configuration = self.chart.initial_configuration()
        self.condition_values = {
            name: condition.initial
            for name, condition in self.chart.conditions.items()}
        self._raised = set()
        self.cycle = 0
        self.action_log = []


def check_configuration(chart: Chart, configuration: FrozenSet[str]) -> List[str]:
    """Check configuration consistency; returns a list of violations.

    A legal configuration contains the root; for every active OR state
    exactly one child is active; for every active AND state all children are
    active; every active non-root state has its parent active.
    """
    problems = []
    if chart.root not in configuration:
        problems.append("root not active")
    for name in configuration:
        state = chart.states[name]
        if state.parent is not None and state.parent not in configuration:
            problems.append(f"{name} active but parent {state.parent} is not")
        if state.kind is StateKind.OR and state.children:
            active_children = [c for c in state.children if c in configuration]
            if len(active_children) != 1:
                problems.append(
                    f"OR state {name} has {len(active_children)} active children")
        if state.kind is StateKind.AND:
            missing = [c for c in state.children if c not in configuration]
            if missing:
                problems.append(f"AND state {name} missing regions {missing}")
    return problems
