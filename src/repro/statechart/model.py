"""Core data model for extended statecharts.

This module defines the in-memory representation of the paper's specification
language: hierarchical statecharts extended with external ports for events,
conditions and data (section 2 of the paper).  A chart is a tree of states of
three kinds:

* **BASIC** states — leaves.
* **OR** states — exclusive composites: when active, exactly one child is
  active.  They carry a ``default`` child entered on default completion.
* **AND** states — parallel composites: when active, *all* children are
  active.  Their children are the parallel regions.

A fourth kind, **REF**, models the ``@Name`` notation of Figs. 5/6: a leaf
that stands for another named chart, resolved (inlined) before synthesis.

Transitions are attached to their *source* state and carry a parsed label
``trigger [guard] / action`` (see :mod:`repro.statechart.labels`).

The model is deliberately plain — behaviour lives in
:mod:`repro.statechart.semantics` (execution), :mod:`repro.sla` (hardware
synthesis) and :mod:`repro.flow.timing` (static analysis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.statechart.expr import Expr


class StateKind(enum.Enum):
    """The three statechart composition operators, plus chart references."""

    BASIC = "basic"
    OR = "or"
    AND = "and"
    REF = "ref"


class PortKind(enum.Enum):
    """What travels over an external port (enum ``ECD`` of Fig. 2b)."""

    EVENT = "Event"
    CONDITION = "Condition"
    DATA = "Data"


class PortDirection(enum.Enum):
    """Port direction (enum ``PortDir`` of Fig. 2b)."""

    INPUT = "Input"
    OUTPUT = "Output"
    BIDIRECTIONAL = "Bidirectional"


@dataclass
class Port:
    """An external port of the chart (``Port`` struct of Fig. 2b).

    Ports are how a hardware/software statechart implementation reaches the
    outside world; every event, condition or data element that crosses the
    chart boundary is bound to one.  ``address`` is assigned by the port
    architecture generator (:mod:`repro.pscp.ports`) and is what the final
    TEP code uses to touch the port.
    """

    name: str
    kind: PortKind
    width: int = 1
    address: Optional[int] = None
    direction: PortDirection = PortDirection.INPUT

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"port {self.name!r}: width must be positive")


@dataclass
class Event:
    """A (possibly external) event.

    Events are sampled into the Configuration Register at the start of a
    configuration cycle and live for exactly one cycle.  ``period`` is the
    arrival-period timing constraint in reference-clock cycles
    (``TimeConstraint`` of Fig. 2b, Table 2); ``None`` means unconstrained.
    """

    name: str
    width: int = 1
    port: Optional[str] = None
    period: Optional[int] = None

    @property
    def external(self) -> bool:
        return self.port is not None


@dataclass
class Condition:
    """A (possibly external) condition.  Conditions persist across cycles."""

    name: str
    width: int = 1
    port: Optional[str] = None
    initial: bool = False

    @property
    def external(self) -> bool:
        return self.port is not None


@dataclass
class Transition:
    """A transition of the chart.

    ``trigger`` is the event expression before the brackets, ``guard`` the
    condition expression inside ``[...]``; either may be ``None`` (Fig. 5/6
    use all combinations).  ``action`` is the call-text after ``/`` — a call
    into a routine written in the intermediate C dialect, compiled to a TEP
    program whose address ends up in the Transition Address Table.
    """

    source: str
    target: str
    trigger: Optional[Expr] = None
    guard: Optional[Expr] = None
    action: Optional[str] = None
    label: str = ""
    #: Explicit WCET override in cycles ("explicit timing constraints must be
    #: specified" when a routine's length cannot be derived — section 4).
    wcet_override: Optional[int] = None
    #: Index in chart declaration order; doubles as the Transition Address
    #: Table slot and as the conflict tie-breaker.
    index: int = -1
    #: Source line in the textual chart, when parsed from one.
    line: Optional[int] = None

    def names_consumed(self) -> frozenset:
        """Every event/condition name this transition is sensitive to."""
        names = set()
        if self.trigger is not None:
            names |= self.trigger.names()
        if self.guard is not None:
            names |= self.guard.names()
        return frozenset(names)

    def consumes(self, name: str) -> bool:
        """True if *name* occurs *positively* in the trigger or guard.

        The timing validator's notion of "a state consumes event E" (section
        4) reduces to this predicate on the state's outgoing transitions.
        Negative occurrences (``not (X_PULSE or Y_PULSE)``) react to the
        event's absence and do not consume it.
        """
        for expression in (self.trigger, self.guard):
            if expression is not None:
                positive, _ = expression.polarity_names()
                if name in positive:
                    return True
        return False

    def describe(self) -> str:
        parts = []
        if self.trigger is not None:
            parts.append(str(self.trigger))
        if self.guard is not None:
            parts.append(f"[{self.guard}]")
        if self.action:
            parts.append(f"/{self.action}")
        body = " ".join(parts) if parts else "(completion)"
        return f"{self.source} --{body}--> {self.target}"


@dataclass
class State:
    """One node of the state hierarchy."""

    name: str
    kind: StateKind = StateKind.BASIC
    children: List[str] = field(default_factory=list)
    default: Optional[str] = None
    parent: Optional[str] = None
    transitions: List[Transition] = field(default_factory=list)
    #: For REF states: the name of the chart being referenced.
    ref: Optional[str] = None
    #: Source line in the textual chart, when parsed from one.
    line: Optional[int] = None

    @property
    def is_composite(self) -> bool:
        return self.kind in (StateKind.OR, StateKind.AND)


@dataclass(frozen=True)
class PropertyDecl:
    """A declared safety/deadline property, carried verbatim on the chart.

    The text is the model checker's input language (see docs/CHECKING.md);
    the chart itself only stores and round-trips it — parsing and checking
    live in :mod:`repro.analysis.bmc`.
    """

    text: str
    line: Optional[int] = None


class ChartError(Exception):
    """Raised for structurally invalid charts or invalid queries on them."""


class Chart:
    """An extended statechart: a state tree plus its event/condition/port
    declarations and the transitions connecting the states.

    The class offers the structural queries every downstream phase needs:
    ancestor chains, least common ancestors, default completion, scopes and
    exit/entry sets.  It does not execute anything by itself.
    """

    def __init__(self, name: str, root: str = "Root") -> None:
        self.name = name
        self.root = root
        self.states: Dict[str, State] = {root: State(root, StateKind.OR)}
        self.events: Dict[str, Event] = {}
        self.conditions: Dict[str, Condition] = {}
        self.ports: Dict[str, Port] = {}
        self.transitions: List[Transition] = []
        #: declared model-checking properties (docs/CHECKING.md), verbatim
        self.properties: List[PropertyDecl] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(
        self,
        name: str,
        kind: StateKind = StateKind.BASIC,
        parent: Optional[str] = None,
        default: Optional[str] = None,
        ref: Optional[str] = None,
        line: Optional[int] = None,
    ) -> State:
        """Add a state under *parent* (default: the root)."""
        if name in self.states:
            raise ChartError(f"duplicate state {name!r}")
        parent = parent if parent is not None else self.root
        if parent not in self.states:
            raise ChartError(f"unknown parent state {parent!r}")
        state = State(name, kind, default=default, parent=parent, ref=ref,
                      line=line)
        self.states[name] = state
        self.states[parent].children.append(name)
        return state

    def add_transition(
        self,
        source: str,
        target: str,
        trigger: Optional[Expr] = None,
        guard: Optional[Expr] = None,
        action: Optional[str] = None,
        label: str = "",
        wcet_override: Optional[int] = None,
        line: Optional[int] = None,
    ) -> Transition:
        for endpoint in (source, target):
            if endpoint not in self.states:
                raise ChartError(f"transition endpoint {endpoint!r} is not a state")
        transition = Transition(
            source=source,
            target=target,
            trigger=trigger,
            guard=guard,
            action=action,
            label=label,
            wcet_override=wcet_override,
            index=len(self.transitions),
            line=line,
        )
        self.states[source].transitions.append(transition)
        self.transitions.append(transition)
        return transition

    def add_event(self, name: str, width: int = 1, port: Optional[str] = None,
                  period: Optional[int] = None) -> Event:
        if name in self.events or name in self.conditions:
            raise ChartError(f"duplicate event/condition {name!r}")
        event = Event(name, width=width, port=port, period=period)
        self.events[name] = event
        return event

    def add_condition(self, name: str, width: int = 1, port: Optional[str] = None,
                      initial: bool = False) -> Condition:
        if name in self.events or name in self.conditions:
            raise ChartError(f"duplicate event/condition {name!r}")
        condition = Condition(name, width=width, port=port, initial=initial)
        self.conditions[name] = condition
        return condition

    def add_port(self, name: str, kind: PortKind, width: int = 1,
                 address: Optional[int] = None,
                 direction: PortDirection = PortDirection.INPUT) -> Port:
        if name in self.ports:
            raise ChartError(f"duplicate port {name!r}")
        port = Port(name, kind, width=width, address=address, direction=direction)
        self.ports[name] = port
        return port

    def add_property(self, text: str,
                     line: Optional[int] = None) -> PropertyDecl:
        decl = PropertyDecl(text=text, line=line)
        self.properties.append(decl)
        return decl

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def state(self, name: str) -> State:
        try:
            return self.states[name]
        except KeyError:
            raise ChartError(f"unknown state {name!r}") from None

    def ancestors(self, name: str) -> List[str]:
        """Proper ancestors of *name*, innermost first, ending at the root."""
        chain = []
        current = self.state(name).parent
        while current is not None:
            chain.append(current)
            current = self.states[current].parent
        return chain

    def ancestors_and_self(self, name: str) -> List[str]:
        return [name] + self.ancestors(name)

    def is_ancestor(self, ancestor: str, descendant: str) -> bool:
        """True if *ancestor* is a (non-strict) ancestor of *descendant*."""
        return ancestor in self.ancestors_and_self(descendant)

    def depth(self, name: str) -> int:
        return len(self.ancestors(name))

    def lca(self, a: str, b: str) -> str:
        """Least common ancestor of two states (may be one of them)."""
        chain_a = self.ancestors_and_self(a)
        chain_b = set(self.ancestors_and_self(b))
        for candidate in chain_a:
            if candidate in chain_b:
                return candidate
        raise ChartError(f"states {a!r} and {b!r} share no ancestor")

    def descendants(self, name: str) -> Iterator[str]:
        """All strict descendants of *name*, preorder."""
        for child in self.state(name).children:
            yield child
            yield from self.descendants(child)

    def subtree(self, name: str) -> Iterator[str]:
        yield name
        yield from self.descendants(name)

    def leaves(self) -> List[str]:
        return [s.name for s in self.states.values() if not s.children]

    def basic_states(self) -> List[str]:
        return [s.name for s in self.states.values()
                if s.kind in (StateKind.BASIC, StateKind.REF) and not s.children]

    def preorder(self) -> Iterator[State]:
        """All states in preorder starting at the root."""
        for name in self.subtree(self.root):
            yield self.states[name]

    # ------------------------------------------------------------------
    # configuration helpers (shared by semantics and SLA synthesis)
    # ------------------------------------------------------------------
    def default_completion(self, name: str) -> List[str]:
        """The set of states entered when *name* is entered by default.

        Entering an OR state enters its default child recursively; entering an
        AND state enters every region.  Returns *name* plus everything below
        it that becomes active.
        """
        state = self.state(name)
        entered = [name]
        if state.kind is StateKind.OR and state.children:
            default = state.default or state.children[0]
            if default not in state.children:
                raise ChartError(
                    f"default {default!r} of {name!r} is not one of its children")
            entered.extend(self.default_completion(default))
        elif state.kind is StateKind.AND:
            for child in state.children:
                entered.extend(self.default_completion(child))
        return entered

    def initial_configuration(self) -> frozenset:
        return frozenset(self.default_completion(self.root))

    def transition_scope(self, transition: Transition) -> str:
        """The state whose sub-configuration the transition rearranges.

        This is the lowest OR-state ancestor of the LCA of source and target;
        two transitions conflict iff their scopes are ancestrally related.
        """
        lca = self.lca(transition.source, transition.target)
        # A self-loop or child-to-sibling transition has its LCA at the
        # parent; if the LCA is the source or target itself, or an AND state,
        # climb to the nearest OR ancestor so the exit set is well-defined.
        node = lca
        if node in (transition.source, transition.target):
            node = self.states[node].parent or self.root
        while self.states[node].kind is not StateKind.OR:
            parent = self.states[node].parent
            if parent is None:
                break
            node = parent
        return node

    def exit_set(self, transition: Transition, configuration: frozenset) -> frozenset:
        """States left when *transition* fires from *configuration*."""
        scope = self.transition_scope(transition)
        return frozenset(s for s in configuration
                         if s != scope and self.is_ancestor(scope, s))

    def entry_set(self, transition: Transition) -> frozenset:
        """States entered when *transition* fires (default completion of the
        target, plus the chain from the scope down to the target, plus the
        default completion of any AND-siblings entered along the way)."""
        scope = self.transition_scope(transition)
        entered = set(self.default_completion(transition.target))
        # Walk up from target to scope, entering intermediate states; any AND
        # state crossed pulls in default completion of its other regions.
        current = transition.target
        while True:
            parent = self.states[current].parent
            if parent is None or current == scope:
                break
            if parent != scope:
                entered.add(parent)
            parent_state = self.states[parent]
            if parent_state.kind is StateKind.AND:
                for region in parent_state.children:
                    if region != current:
                        entered.update(self.default_completion(region))
            current = parent
        entered.discard(scope)
        return frozenset(entered)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def outgoing(self, name: str) -> Sequence[Transition]:
        return tuple(self.state(name).transitions)

    def signals(self) -> List[str]:
        """All event and condition names, events first, declaration order."""
        return list(self.events) + list(self.conditions)

    def constrained_events(self) -> List[Event]:
        """Events carrying an arrival-period constraint (Table 2 inputs)."""
        return [e for e in self.events.values() if e.period is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Chart({self.name!r}, states={len(self.states)}, "
                f"transitions={len(self.transitions)})")
