"""The transition graph used by the static timing validator.

Section 4 of the paper works on "the tree … augmented by the chart's
transitions, resulting in a directed graph" (Fig. 4).  This module builds
that view:

* nodes are the chart's states;
* tree edges connect parents to children (with the OR/AND kind on the
  parent);
* transition edges connect source to target states and carry the transition.

It also provides the sibling machinery the heuristic needs: for a state
``s``, which AND-regions run in parallel with the region containing ``s``,
and the subtree roots to bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.statechart.model import Chart, State, StateKind, Transition


@dataclass(frozen=True)
class ParallelContext:
    """For a state: the AND-ancestor and the sibling regions to bound."""

    and_state: str
    own_region: str
    sibling_regions: Tuple[str, ...]


class TransitionGraph:
    """Graph view of a chart for path search."""

    def __init__(self, chart: Chart) -> None:
        self.chart = chart
        #: transition edges grouped by source state
        self.out_edges: Dict[str, List[Transition]] = {
            name: list(state.transitions) for name, state in chart.states.items()}

    def successors(self, name: str) -> Iterator[Tuple[str, Transition]]:
        """(target, transition) pairs leaving *name* (directly)."""
        for transition in self.out_edges.get(name, ()):
            yield transition.target, transition

    def effective_successors(self, name: str) -> Iterator[Tuple[str, Transition]]:
        """Successors including inherited transitions from ancestors.

        In statecharts a transition leaving a composite state also leaves
        every active descendant — Fig. 6's ``ERROR/Stop()`` leaving
        ``Operation`` applies while the chart sits in any substate.  The DFS
        must see those edges from substates too.
        """
        seen: Set[int] = set()
        for ancestor in self.chart.ancestors_and_self(name):
            for transition in self.out_edges.get(ancestor, ()):
                if transition.index not in seen:
                    seen.add(transition.index)
                    yield transition.target, transition

    def entry_states(self, name: str) -> List[str]:
        """States whose outgoing transitions become relevant after entering
        *name* by default completion (the basic states that become active)."""
        entered = self.chart.default_completion(name)
        return entered

    def consuming_states(self, signal: str) -> List[str]:
        """All states with an outgoing transition sensitive to *signal*.

        This is the "first searching for every state that consumes the
        desired event" step of the paper's heuristic.
        """
        result = []
        for state in self.chart.preorder():
            if any(t.consumes(signal) for t in state.transitions):
                result.append(state.name)
        return result

    def parallel_contexts(self, name: str) -> List[ParallelContext]:
        """Every AND composition *name* sits inside, innermost first.

        For each AND-ancestor ``A`` of *name*, identifies the region of ``A``
        containing *name* and the sibling regions whose worst-case work must
        be added as an upper bound while stepping inside the own region
        (section 4, Fig. 4).
        """
        contexts = []
        chain = self.chart.ancestors_and_self(name)
        for child, parent in zip(chain, chain[1:]):
            if self.chart.states[parent].kind is StateKind.AND:
                siblings = tuple(c for c in self.chart.states[parent].children
                                 if c != child)
                contexts.append(ParallelContext(parent, child, siblings))
        return contexts

    def to_dot(self, highlight: Optional[Set[int]] = None) -> str:
        """Render the graph in Graphviz DOT (used to draw Fig. 4)."""
        highlight = highlight or set()
        lines = [f'digraph "{self.chart.name}" {{', "  rankdir=TB;"]

        def emit(name: str, indent: str) -> None:
            state = self.chart.states[name]
            if state.children:
                shape = "AND" if state.kind is StateKind.AND else "OR"
                lines.append(f'{indent}subgraph "cluster_{name}" {{')
                lines.append(f'{indent}  label="{name} [{shape}]";')
                for child in state.children:
                    emit(child, indent + "  ")
                lines.append(f"{indent}}}")
            else:
                lines.append(f'{indent}"{name}" [shape=box];')

        for child in self.chart.states[self.chart.root].children:
            emit(child, "  ")
        for transition in self.chart.transitions:
            style = ' color=red penwidth=2' if transition.index in highlight else ""
            label = (transition.label or "").replace('"', r'\"')
            lines.append(
                f'  "{transition.source}" -> "{transition.target}"'
                f' [label="{label}"{style}];')
        lines.append("}")
        return "\n".join(lines)


def reachable_states(chart: Chart) -> Set[str]:
    """States reachable from the initial configuration through transitions.

    This is a cheap structural over-approximation (ignores triggers/guards):
    a state is reachable if it is in the initial configuration or is entered
    by some transition whose source is reachable.  Used by validation to warn
    about dead states.
    """
    graph = TransitionGraph(chart)
    frontier = list(chart.initial_configuration())
    reached: Set[str] = set(frontier)
    while frontier:
        state = frontier.pop()
        for target, transition in graph.effective_successors(state):
            entered = set(chart.default_completion(target))
            entered.update(chart.ancestors_and_self(target))
            new = entered - reached
            reached |= new
            frontier.extend(new)
    return reached
