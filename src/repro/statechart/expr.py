"""Boolean expressions over event and condition names.

Transition labels in the paper use a small boolean language:

* ``INIT or ALLRESET`` (Fig. 6)
* ``not (X_PULSE or Y_PULSE)`` (Fig. 6)
* ``XFINISH and YFINISH and PHIFINISH`` (guard, Fig. 5)

This module provides the AST (:class:`Name`, :class:`Not`, :class:`And`,
:class:`Or`), a recursive-descent parser with the usual precedence
(``not`` > ``and`` > ``or``), evaluation against a set of asserted names, and
conversion to sum-of-products form — the form the SLA synthesizer needs to
emit PLA product terms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set, Tuple


class ExprError(Exception):
    """Raised on malformed expression text."""


class Expr:
    """Base class for boolean expressions."""

    def names(self) -> FrozenSet[str]:
        raise NotImplementedError

    def polarity_names(self) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """(positively occurring, negatively occurring) names.

        A name occurs positively when it sits under an even number of
        negations — asserting it can make the expression true.  The timing
        validator's notion of "consuming" an event only counts positive
        occurrences: ``not (X_PULSE or Y_PULSE)`` *reacts to the absence* of
        the pulses, it does not consume them.
        """
        return self._polarity(positive=True)

    def _polarity(self, positive: bool) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        raise NotImplementedError

    def evaluate(self, asserted: Iterable[str]) -> bool:
        raise NotImplementedError

    def to_sop(self) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
        """Sum-of-products: a list of (positive literals, negated literals).

        The expression is true iff some product has all its positive literals
        asserted and all its negated literals deasserted.  Contradictory
        products (a literal both positive and negated) are dropped.
        """
        products = self._sop()
        return [p for p in products if not (p[0] & p[1])]

    def _sop(self) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
        raise NotImplementedError

    def _negated_sop(self) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
        raise NotImplementedError


@dataclass(frozen=True)
class Name(Expr):
    """A reference to an event or condition by name."""

    name: str

    def names(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, asserted: Iterable[str]) -> bool:
        return self.name in set(asserted)

    def _sop(self):
        return [(frozenset({self.name}), frozenset())]

    def _negated_sop(self):
        return [(frozenset(), frozenset({self.name}))]

    def _polarity(self, positive: bool):
        mine = frozenset({self.name})
        empty: FrozenSet[str] = frozenset()
        return (mine, empty) if positive else (empty, mine)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def names(self) -> FrozenSet[str]:
        return self.operand.names()

    def evaluate(self, asserted: Iterable[str]) -> bool:
        return not self.operand.evaluate(asserted)

    def _sop(self):
        return self.operand._negated_sop()

    def _negated_sop(self):
        return self.operand._sop()

    def _polarity(self, positive: bool):
        return self.operand._polarity(not positive)

    def __str__(self) -> str:
        return f"not {self._wrap(self.operand)}"

    @staticmethod
    def _wrap(e: Expr) -> str:
        return f"({e})" if isinstance(e, (And, Or)) else str(e)


@dataclass(frozen=True)
class And(Expr):
    left: Expr
    right: Expr

    def names(self) -> FrozenSet[str]:
        return self.left.names() | self.right.names()

    def evaluate(self, asserted: Iterable[str]) -> bool:
        asserted = set(asserted)
        return self.left.evaluate(asserted) and self.right.evaluate(asserted)

    def _sop(self):
        return [(lp | rp, ln | rn)
                for lp, ln in self.left._sop()
                for rp, rn in self.right._sop()]

    def _negated_sop(self):
        # not (a and b) == not a or not b
        return self.left._negated_sop() + self.right._negated_sop()

    def _polarity(self, positive: bool):
        lp, ln = self.left._polarity(positive)
        rp, rn = self.right._polarity(positive)
        return lp | rp, ln | rn

    def __str__(self) -> str:
        return f"{self._wrap(self.left)} and {self._wrap(self.right)}"

    @staticmethod
    def _wrap(e: Expr) -> str:
        return f"({e})" if isinstance(e, Or) else str(e)


@dataclass(frozen=True)
class Or(Expr):
    left: Expr
    right: Expr

    def names(self) -> FrozenSet[str]:
        return self.left.names() | self.right.names()

    def evaluate(self, asserted: Iterable[str]) -> bool:
        asserted = set(asserted)
        return self.left.evaluate(asserted) or self.right.evaluate(asserted)

    def _sop(self):
        return self.left._sop() + self.right._sop()

    def _negated_sop(self):
        return [(lp | rp, ln | rn)
                for lp, ln in self.left._negated_sop()
                for rp, rn in self.right._negated_sop()]

    def _polarity(self, positive: bool):
        lp, ln = self.left._polarity(positive)
        rp, rn = self.right._polarity(positive)
        return lp | rp, ln | rn

    def __str__(self) -> str:
        return f"{self.left} or {self.right}"


def conjunction(names: Iterable[str]) -> Expr:
    """Build ``a and b and ...`` from a non-empty list of names."""
    exprs = [Name(n) for n in names]
    if not exprs:
        raise ExprError("conjunction of zero names")
    result: Expr = exprs[0]
    for e in exprs[1:]:
        result = And(result, e)
    return result


def disjunction(names: Iterable[str]) -> Expr:
    """Build ``a or b or ...`` from a non-empty list of names."""
    exprs = [Name(n) for n in names]
    if not exprs:
        raise ExprError("disjunction of zero names")
    result: Expr = exprs[0]
    for e in exprs[1:]:
        result = Or(result, e)
    return result


_TOKEN_RE = re.compile(r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<name>[A-Za-z_][A-Za-z_0-9]*))")

_KEYWORDS = {"and", "or", "not"}


def _tokenize(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExprError(f"bad expression syntax near {remainder!r}")
        pos = match.end()
        if match.lastgroup == "lparen":
            tokens.append("(")
        elif match.lastgroup == "rparen":
            tokens.append(")")
        else:
            tokens.append(match.group("name"))
    return tokens


class _Parser:
    """not > and > or, left-associative, parenthesised subexpressions."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def take(self) -> str:
        token = self.peek()
        self.pos += 1
        return token

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.pos != len(self.tokens):
            raise ExprError(f"trailing tokens {self.tokens[self.pos:]!r}")
        return expr

    def parse_or(self) -> Expr:
        expr = self.parse_and()
        while self.peek() == "or":
            self.take()
            expr = Or(expr, self.parse_and())
        return expr

    def parse_and(self) -> Expr:
        expr = self.parse_not()
        while self.peek() == "and":
            self.take()
            expr = And(expr, self.parse_not())
        return expr

    def parse_not(self) -> Expr:
        if self.peek() == "not":
            self.take()
            return Not(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.take()
        if token == "(":
            expr = self.parse_or()
            if self.take() != ")":
                raise ExprError("missing closing parenthesis")
            return expr
        if token in _KEYWORDS or not token:
            raise ExprError(f"expected name, got {token!r}")
        if token == ")":
            raise ExprError("unexpected ')'")
        return Name(token)


def parse_expr(text: str) -> Expr:
    """Parse trigger/guard expression text into an :class:`Expr` tree."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExprError("empty expression")
    return _Parser(tokens).parse()
