"""Extended statecharts: model, textual format, semantics and graph views.

Public API re-exports::

    from repro.statechart import (
        Chart, ChartBuilder, Interpreter, parse_chart, parse_label,
    )
"""

from repro.statechart.builder import ChartBuilder, StateHandle
from repro.statechart.expr import (
    And,
    Expr,
    ExprError,
    Name,
    Not,
    Or,
    conjunction,
    disjunction,
    parse_expr,
)
from repro.statechart.graph import ParallelContext, TransitionGraph, reachable_states
from repro.statechart.labels import (
    Label,
    LabelError,
    action_arguments,
    action_routine_name,
    parse_label,
)
from repro.statechart.model import (
    Chart,
    ChartError,
    Condition,
    Event,
    Port,
    PortDirection,
    PortKind,
    State,
    StateKind,
    Transition,
)
from repro.statechart.parser import ParseError, emit_chart, parse_chart
from repro.statechart.semantics import Interpreter, StepResult, check_configuration
from repro.statechart.validate import (
    chart_problems,
    chart_warnings,
    resolve_references,
    validate_chart,
)

__all__ = [
    "And", "Chart", "ChartBuilder", "ChartError", "Condition", "Event",
    "Expr", "ExprError", "Interpreter", "Label", "LabelError", "Name",
    "Not", "Or", "ParallelContext", "ParseError", "Port", "PortDirection",
    "PortKind", "State", "StateHandle", "StateKind", "StepResult",
    "Transition", "TransitionGraph", "action_arguments",
    "action_routine_name", "chart_problems", "chart_warnings", "check_configuration",
    "conjunction", "disjunction", "emit_chart", "parse_chart", "parse_expr",
    "parse_label", "reachable_states", "resolve_references", "validate_chart",
]
