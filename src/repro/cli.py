"""Command-line front end for the PSCP codesign flow.

Mirrors how the paper's system is used: feed it a textual statechart
(Fig. 2a) and the routine sources (Fig. 2b dialect); it runs the flow and
prints the analysis/synthesis results.

Usage::

    python -m repro CHART.sc ROUTINES.c [options]

    --arch minimal|md16          starting architecture (default: auto-select
                                 from the data-path requirements)
    --teps N                     number of TEPs
    --optimize                   peephole + constant-argument specialization
    --improve                    run the iterative improvement ladder
    --emit blif|vhdl|asm|dot     write generated artifacts to stdout
    --floorplan                  print the CLB floorplan
    --json                       machine-readable summary
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.flow import (
    Improver,
    build_system,
    select_initial_architecture,
    table2_report,
    table3_report,
)
from repro.isa import MD16_TEP, MINIMAL_TEP
from repro.statechart import parse_chart

_ARCHS = {"minimal": MINIMAL_TEP, "md16": MD16_TEP}


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSCP codesign flow: statechart + routines -> "
                    "analysis, synthesis, simulation artifacts")
    parser.add_argument("chart", help="textual statechart file (Fig. 2a format)")
    parser.add_argument("routines", help="intermediate-C routine file")
    parser.add_argument("--arch", choices=sorted(_ARCHS),
                        help="starting architecture (default: auto-select)")
    parser.add_argument("--teps", type=int, default=None,
                        help="override the number of TEPs")
    parser.add_argument("--optimize", action="store_true",
                        help="apply microcode peephole + specialization")
    parser.add_argument("--improve", action="store_true",
                        help="run the iterative improvement ladder")
    parser.add_argument("--emit", choices=["blif", "vhdl", "asm", "dot"],
                        action="append", default=[],
                        help="emit a generated artifact (repeatable)")
    parser.add_argument("--floorplan", action="store_true",
                        help="print the CLB floorplan")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable summary")
    return parser


def run(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    args = build_argument_parser().parse_args(argv)

    try:
        with open(args.chart) as handle:
            chart_text = handle.read()
        with open(args.routines) as handle:
            routine_text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    chart = parse_chart(chart_text)

    if args.improve:
        improver = Improver(chart, routine_text)
        result = improver.run()
        system = result.final
        if not args.json:
            print("improvement trajectory:", file=out)
            for step in result.steps:
                print(f"  {step.rung:20s} area {step.area_clbs:5d} "
                      f"violations {step.n_violations}", file=out)
    else:
        if args.arch is not None:
            arch = _ARCHS[args.arch]
        else:
            arch = select_initial_architecture(chart, routine_text)
        if args.teps is not None:
            arch = arch.with_(n_teps=args.teps)
        if args.optimize:
            arch = arch.with_(microcode_optimized=True)
        system = build_system(chart, routine_text, arch,
                              specialize=args.optimize)

    violations = system.violations()

    if args.json:
        summary = {
            "chart": chart.name,
            "architecture": system.arch.describe(),
            "area_clbs": system.area().total_clbs,
            "device": system.area().device().name,
            "critical_paths": system.critical_paths(),
            "violations": [v.describe() for v in violations],
            "routine_wcets": {name: wcet
                              for name, wcet in system.routine_wcets().items()
                              if not name.startswith("__")},
        }
        json.dump(summary, out, indent=2)
        print(file=out)
    else:
        print(f"chart {chart.name!r}: {len(chart.states)} states, "
              f"{len(chart.transitions)} transitions", file=out)
        print(f"architecture: {system.arch.describe()}", file=out)
        print(file=out)
        print(table2_report(chart), file=out)
        print(file=out)
        print(table3_report(system.validator.all_cycles()), file=out)
        print(file=out)
        if violations:
            print("timing violations:", file=out)
            for violation in violations:
                print(f"  {violation.describe()}", file=out)
        else:
            print("all timing constraints met", file=out)
        print(file=out)
        print(system.area().report(), file=out)

    for kind in args.emit:
        print(file=out)
        print(f"---- {kind} ----", file=out)
        if kind == "blif":
            from repro.sla import emit_blif
            print(emit_blif(system.pla), file=out)
        elif kind == "vhdl":
            from repro.hw import emit_sla_vhdl
            print(emit_sla_vhdl(
                "sla", system.pla.layout.input_names(),
                system.pla.output_names(),
                system.pla.as_products_by_output()), file=out)
        elif kind == "asm":
            from repro.isa import emit_text
            print(emit_text(system.compiled.flat_instructions()), file=out)
        elif kind == "dot":
            from repro.statechart import TransitionGraph
            print(TransitionGraph(chart).to_dot(), file=out)

    if args.floorplan:
        from repro.hw import floorplan
        print(file=out)
        print(floorplan(system.area()).ascii_map(), file=out)

    return 1 if violations else 0


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
