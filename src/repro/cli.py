"""Command-line front end for the PSCP codesign flow.

Mirrors how the paper's system is used: feed it a textual statechart
(Fig. 2a) and the routine sources (Fig. 2b dialect); it runs the flow and
prints the analysis/synthesis results.

Usage::

    python -m repro CHART.sc ROUTINES.c [options]

    --arch minimal|md16          starting architecture (default: auto-select
                                 from the data-path requirements)
    --teps N                     number of TEPs
    --optimize                   peephole + constant-argument specialization
    --improve                    run the iterative improvement ladder
    --emit blif|vhdl|asm|dot     write generated artifacts to stdout
    --floorplan                  print the CLB floorplan
    --json                       machine-readable summary

Static analysis subcommand (see docs/ANALYSIS.md)::

    python -m repro lint PROJECT [--format text|json|sarif] [--out PATH]
                                 [--suppress CODES] [--enable CODES]
    python -m repro lint --workload smd|elevator

Bounded model checking subcommand (see docs/CHECKING.md)::

    python -m repro check PROJECT [--properties FILE] [--depth N]
                                  [--max-states N] [--witness-dir DIR]
                                  [--format text|json|sarif] [--out PATH]
    python -m repro check --workload smd|elevator

``check`` explores every configuration the machine's step semantics can
reach within the bound (enable-products prune the event alphabet per
state) and decides the declared properties: ``never A while B``,
``never COND in S``, ``always reach S within k cycles of E`` and
``deadline E [n]``.  Proofs are exhaustive within the bound; every
counterexample is replayed on the real machine (witness + forensics
bundle under ``--witness-dir``) before it is reported.  Exit 0 proved,
1 violated, 2 bad input, 3 bound exhausted.

``lint`` runs the cross-layer analyzer: chart well-formedness and design
smells, transition determinism (shadowing/priority overlap), AND-region
write-write races, action-routine dataflow (use-before-init, dead stores,
constant conditions, width truncation), WCET/budget checks against the ISA
cost model, and SLA/TAT invariants.  Exit status 1 means error-severity
diagnostics; warnings exit 0.

Observability subcommands (see docs/OBSERVABILITY.md)::

    python -m repro trace PROJECT [--out trace.json] [--cycles N] ...
    python -m repro stats PROJECT [--json] [--cycles N] ...
    python -m repro bench [--workloads smd,elevator,farm] [--repeats K]
                          [--out BENCH_6.json] [--compare] [--baseline PATH]
                          [--update-baseline] [--tolerance F]

Robustness subcommands (see docs/ROBUSTNESS.md and docs/RESILIENCE.md)::

    python -m repro faults PROJECT [--seed N] [--runs-per-class N]
                                   [--classes a,b,...] [--json]
    python -m repro serve  PROJECT [--workers N] [--items N] [--seed N]
                                   [--chaos] [--json] [--dashboard]
                                   [--trace PATH] [--forensics-dir DIR]
                                   [--samples PATH] [--sample-every K]
                                   [--lineage PATH]
    python -m repro forensics BUNDLE.json [--json]
    python -m repro why DAG.json NODE [--find] [--json]

``PROJECT`` is either a directory holding one ``*.sc`` chart and one
``*.c`` routine file (e.g. ``examples/smd``) or an explicit
``CHART.sc ROUTINES.c`` pair.  ``trace`` simulates the compiled system and
writes Chrome trace-event JSON — open it at https://ui.perfetto.dev —
with one track per TEP plus the SLA, scheduler and condition-cache bus;
``stats`` runs the same simulation and prints the metrics registry;
``bench`` runs the pinned-seed perf workloads (warmup + interleaved
median-of-k) and writes a machine-readable ``BENCH_6.json`` — with
``--compare`` it diffs the run against the committed baseline
(``benchmarks/perf_baseline.json``) and exits non-zero on regressions;
``faults`` runs seeded fault-injection campaigns over the SMD closed loop
and reports detected/recovered/missed per fault class; ``serve`` runs a
supervised farm of machine instances over a seeded event stream — with
``--chaos`` it injects per-worker fault plans and exercises
restart-from-snapshot, load shedding and backpressure, then prints the
conservation-checked farm report.  Each farm worker carries an always-on
flight recorder (disable with ``--no-recorder``); ``--trace`` merges every
machine plus the supervisor timeline into one Perfetto trace,
``--forensics-dir`` collects the bundles dumped on escalation, and
``--dashboard`` renders the sampler's sparkline dashboard.  ``forensics``
pretty-prints one such bundle.  Under ``--processes``, ``--lineage``
records end-to-end causal lineage — every item's path from injection
through dispatch, redispatch after a kill, standby promotion, down to
machine-level latches, fires and port writes — and writes the stitched
DAG as canonical JSON; ``why`` then renders the complete causal chain
through any node of that DAG (byte-identical across same-seed runs).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.flow import (
    Improver,
    build_system,
    improvement_profile_report,
    select_initial_architecture,
    table2_report,
    table3_report,
)
from repro.isa import MD16_TEP, MINIMAL_TEP
from repro.statechart import parse_chart

_ARCHS = {"minimal": MINIMAL_TEP, "md16": MD16_TEP}


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PSCP codesign flow: statechart + routines -> "
                    "analysis, synthesis, simulation artifacts")
    parser.add_argument("chart", help="textual statechart file (Fig. 2a format)")
    parser.add_argument("routines", help="intermediate-C routine file")
    parser.add_argument("--arch", choices=sorted(_ARCHS),
                        help="starting architecture (default: auto-select)")
    parser.add_argument("--teps", type=_positive_int, default=None,
                        help="override the number of TEPs")
    parser.add_argument("--optimize", action="store_true",
                        help="apply microcode peephole + specialization")
    parser.add_argument("--improve", action="store_true",
                        help="run the iterative improvement ladder")
    parser.add_argument("--emit", choices=["blif", "vhdl", "asm", "dot"],
                        action="append", default=[],
                        help="emit a generated artifact (repeatable)")
    parser.add_argument("--floorplan", action="store_true",
                        help="print the CLB floorplan")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable summary")
    return parser


# ---------------------------------------------------------------------------
# observability subcommands: repro trace / repro stats
# ---------------------------------------------------------------------------

def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _sim_argument_parser(prog: str, description: str
                         ) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("project",
                        help="project directory (one *.sc + one *.c) or a "
                             "chart file followed by a routine file")
    parser.add_argument("routines", nargs="?", default=None,
                        help="routine file (when PROJECT is a chart file)")
    parser.add_argument("--cycles", type=_positive_int, default=None,
                        help="configuration cycles to simulate")
    parser.add_argument("--arch", choices=sorted(_ARCHS),
                        help="architecture (default: auto-select)")
    parser.add_argument("--teps", type=_positive_int, default=None,
                        help="number of TEPs (default: 2 for the SMD chart)")
    parser.add_argument("--optimize", action="store_true",
                        help="peephole + constant-argument specialization")
    return parser


def _resolve_paths(project: str, routines: Optional[str]
                   ) -> Tuple[str, str]:
    """Resolve (chart path, routine path) from a directory or a file pair."""
    if os.path.isdir(project):
        charts = sorted(name for name in os.listdir(project)
                        if name.endswith(".sc"))
        sources = sorted(name for name in os.listdir(project)
                         if name.endswith(".c"))
        if len(charts) != 1 or len(sources) != 1:
            raise OSError(
                f"{project}: expected exactly one *.sc and one *.c file, "
                f"found {charts or 'no charts'} / {sources or 'no routines'}")
        return (os.path.join(project, charts[0]),
                os.path.join(project, sources[0]))
    if routines is None:
        raise OSError(
            f"{project} is not a directory; pass the routine file too")
    return project, routines


def _load_sources(project: str, routines: Optional[str]
                  ) -> Tuple[str, str]:
    """Resolve (chart text, routine text) from a directory or a file pair."""
    chart_path, routine_path = _resolve_paths(project, routines)
    with open(chart_path) as handle:
        chart_text = handle.read()
    with open(routine_path) as handle:
        routine_text = handle.read()
    return chart_text, routine_text


def _arch_for_chart(chart, routine_text: str, args):
    """Shared architecture defaulting for simulation and lint runs.

    The SMD chart defaults to the paper's final architecture (two 16-bit
    M/D TEPs, optimized code, declared mutual exclusions); other charts
    default to the auto-selected architecture with one TEP.  Returns
    (arch, specialize-routines?).
    """
    is_smd = chart.name == "smd_pickup_head"
    if args.arch is not None:
        arch = _ARCHS[args.arch]
    elif is_smd:
        arch = MD16_TEP
    else:
        arch = select_initial_architecture(chart, routine_text)
    teps = args.teps if args.teps is not None else (2 if is_smd else 1)
    exclusions = frozenset()
    if is_smd and teps > 1:
        from repro.workloads import SMD_MUTUAL_EXCLUSIONS
        exclusions = SMD_MUTUAL_EXCLUSIONS
    optimize = args.optimize or is_smd
    arch = arch.with_(n_teps=teps, mutual_exclusions=exclusions,
                      microcode_optimized=optimize)
    return arch, optimize


def _routine_error(exc, source_path):
    """A routine parse/check failure as a PSC301 diagnostic, its line
    shifted back past the internal type preamble into the user's file."""
    from repro.action.stdlib import PREAMBLE
    from repro.analysis import Diagnostic, Severity, SourceLocation

    offset = PREAMBLE.count("\n") + 1
    line = getattr(exc, "line", None)
    if line is not None and line > offset:
        line -= offset
    return Diagnostic(
        code="PSC301", severity=Severity.ERROR,
        message=f"routines do not parse: {exc}",
        location=SourceLocation(file=source_path, line=line))


def _build_for_simulation(chart, routine_text: str, args):
    """Build the system a trace/stats run simulates."""
    arch, optimize = _arch_for_chart(chart, routine_text, args)
    return build_system(chart, routine_text, arch, specialize=optimize)


def _simulate(system, cycles: Optional[int], tracer, metrics):
    """Drive the built system and return (configuration cycles, report).

    The SMD chart runs in its closed loop against the motor physics; any
    other chart gets a generic stimulus: every constrained event arrives at
    its declared period (other events round-robin when the chart declares no
    constraints).
    """
    if system.chart.name == "smd_pickup_head":
        from repro.workloads import MoveCommand, MotorSpec, SmdClosedLoop
        motors = {
            "X": MotorSpec("X", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Y": MotorSpec("Y", 50_000.0, 0.025e-3, 1.25, 2000.0),
            "Phi": MotorSpec("Phi", 9_000.0, 0.1, 900.0, 0.0),
        }
        loop = SmdClosedLoop(system, motor_specs=motors, tracer=tracer,
                             metrics=metrics)
        report = loop.run([MoveCommand(60, 45, 8)],
                          max_configuration_cycles=cycles or 20000)
        return loop.machine, report
    from repro.pscp.trace import DeadlineMonitor

    machine = system.make_machine()
    if tracer is not None:
        machine.attach_tracer(tracer)
    monitor = DeadlineMonitor(system.chart)
    constrained = sorted(monitor.periods)
    next_arrival = {event: 0 for event in constrained}
    all_events = sorted(system.chart.events)
    total = cycles or 500
    for index in range(total):
        due = set()
        for event in constrained:
            if next_arrival[event] <= machine.time:
                due.add(event)
                monitor.arrival(event, machine.time)
                next_arrival[event] = machine.time + monitor.periods[event]
        if not constrained and all_events:
            due.add(all_events[index % len(all_events)])
        monitor.observe(machine.step(due))
    machine.flush_trace()
    if metrics is not None:
        monitor.publish(metrics)
        metrics.counter("machine.configuration_cycles").value = \
            machine.cycle_count
        metrics.counter("machine.reference_cycles").value = machine.time
    return machine, None


def run_trace(argv: List[str], out=sys.stdout) -> int:
    """``repro trace``: simulate and export a Perfetto-loadable trace."""
    parser = _sim_argument_parser(
        "repro trace",
        "simulate the compiled system and write Chrome trace-event JSON")
    parser.add_argument("--out", default="trace.json",
                        help="output path (default: trace.json)")
    parser.add_argument("--summary", action="store_true",
                        help="also print the plain-text trace summary")
    args = parser.parse_args(argv)

    from repro.obs import MetricsRegistry, Tracer, trace_summary, \
        write_chrome_trace

    try:
        chart_text, routine_text = _load_sources(args.project, args.routines)
        # fail on an unwritable destination now, not after the simulation
        with open(args.out, "a"):
            pass
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chart = parse_chart(chart_text)
    system = _build_for_simulation(chart, routine_text, args)
    tracer = Tracer()
    metrics = MetricsRegistry()
    machine, _report = _simulate(system, args.cycles, tracer, metrics)
    write_chrome_trace(tracer, args.out, metrics)
    print(f"wrote {args.out}: {len(tracer.events)} trace events on "
          f"{len(tracer.track_names)} tracks "
          f"({machine.cycle_count} configuration cycles, "
          f"{machine.time} reference cycles, "
          f"architecture {system.arch.describe()})", file=out)
    if args.summary:
        print(file=out)
        print(trace_summary(tracer, metrics), file=out)
    return 0


#: bump when the ``repro stats --json`` document layout changes
STATS_SCHEMA_VERSION = 1


def run_stats(argv: List[str], out=sys.stdout) -> int:
    """``repro stats``: simulate and print the metrics registry."""
    parser = _sim_argument_parser(
        "repro stats",
        "simulate the compiled system and report runtime metrics")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable metrics dump")
    args = parser.parse_args(argv)

    from repro.flow import ascii_table
    from repro.obs import MetricsRegistry, metrics_summary

    try:
        chart_text, routine_text = _load_sources(args.project, args.routines)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chart = parse_chart(chart_text)
    system = _build_for_simulation(chart, routine_text, args)
    metrics = MetricsRegistry()
    machine, report = _simulate(system, args.cycles, None, metrics)
    if args.json:
        document = {
            "schema_version": STATS_SCHEMA_VERSION,
            "chart": chart.name,
            "architecture": system.arch.describe(),
            "configuration_cycles": machine.cycle_count,
            "reference_cycles": machine.time,
            "metrics": metrics.collect(),
        }
        if report is not None:
            document["deadlines"] = [
                {"event": d.event, "period": d.period,
                 "arrivals": d.arrivals, "consumed": d.consumed,
                 "worst_latency": d.worst_latency, "misses": d.misses}
                for d in report.deadline_reports]
        # canonical: sorted keys, so two same-seed runs diff clean
        json.dump(document, out, indent=2, sort_keys=True)
        print(file=out)
        return 0
    print(f"chart {chart.name!r} on {system.arch.describe()}: "
          f"{machine.cycle_count} configuration cycles, "
          f"{machine.time} reference cycles", file=out)
    if report is not None:
        rows = [(d.event, d.period, d.worst_latency, d.misses)
                for d in report.deadline_reports]
        print(file=out)
        print(ascii_table(["Event", "Period", "Worst latency", "Misses"],
                          rows, title="Deadlines"), file=out)
    print(file=out)
    print(metrics_summary(metrics), file=out)
    return 0


def run_faults(argv: List[str], out=sys.stdout) -> int:
    """``repro faults``: seeded fault campaigns over the SMD closed loop."""
    parser = _sim_argument_parser(
        "repro faults",
        "run seeded fault-injection campaigns against the closed-loop "
        "simulation and report detection/recovery per fault class")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default: 1)")
    parser.add_argument("--runs-per-class", type=_positive_int, default=3,
                        help="fault runs per fault class (default: 3)")
    parser.add_argument("--classes", default=None,
                        help="comma-separated fault classes "
                             "(default: all 15)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable campaign report")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace of the fault runs "
                             "(fault instants + recovery tracks)")
    parser.add_argument("--faults-per-run", type=_positive_int, default=1,
                        help="faults injected per run (default: 1)")
    parser.add_argument("--restore-from-checkpoint", action="store_true",
                        help="restore unrecoverable runs from the last "
                             "checkpoint instead of counting them crashed")
    args = parser.parse_args(argv)

    from repro.fault import ALL_FAULT_KINDS, FaultCampaign
    from repro.obs import MetricsRegistry, metrics_summary

    try:
        chart_text, routine_text = _load_sources(args.project, args.routines)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chart = parse_chart(chart_text)
    if chart.name != "smd_pickup_head":
        print("error: fault campaigns drive the SMD closed loop; "
              f"chart {chart.name!r} has no environment model",
              file=sys.stderr)
        return 2
    classes = ALL_FAULT_KINDS
    if args.classes:
        classes = tuple(name.strip() for name in args.classes.split(",")
                        if name.strip())
        unknown = set(classes) - set(ALL_FAULT_KINDS)
        if unknown:
            print(f"error: unknown fault classes {sorted(unknown)}; "
                  f"known: {', '.join(ALL_FAULT_KINDS)}", file=sys.stderr)
            return 2
    system = _build_for_simulation(chart, routine_text, args)

    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer
        tracer = Tracer()
    metrics = MetricsRegistry()
    campaign = FaultCampaign(
        system, seed=args.seed, runs_per_class=args.runs_per_class,
        classes=classes,
        max_configuration_cycles=args.cycles or 20000,
        faults_per_run=args.faults_per_run,
        restore_from_checkpoint=args.restore_from_checkpoint,
        tracer=tracer, metrics=metrics)
    report = campaign.run()
    if tracer is not None:
        from repro.obs import write_chrome_trace
        write_chrome_trace(tracer, args.trace, metrics)
    if args.json:
        json.dump(report.to_json(), out, indent=2)
        print(file=out)
        return 0
    print(f"chart {chart.name!r} on {system.arch.describe()}", file=out)
    print(file=out)
    print(report.render(), file=out)
    print(file=out)
    print(metrics_summary(metrics), file=out)
    if tracer is not None:
        print(file=out)
        print(f"wrote {args.trace}: {len(tracer.events)} trace events",
              file=out)
    return 0


def run_serve(argv: List[str], out=sys.stdout) -> int:
    """``repro serve``: a supervised machine farm over an event stream."""
    parser = _sim_argument_parser(
        "repro serve",
        "run a supervised farm of PSCP machine instances over a seeded "
        "event stream, with bounded queues, load shedding, circuit "
        "breakers and restart-from-snapshot")
    parser.add_argument("--workers", type=_positive_int, default=2,
                        help="machine instances in the farm (default: 2)")
    parser.add_argument("--processes", type=_positive_int, default=None,
                        metavar="N",
                        help="distributed mode: shard the farm across N "
                             "worker OS processes (framed-message "
                             "transport, failover, delta-encoded "
                             "checkpoints); --chaos then SIGKILLs worker "
                             "processes at seeded ticks")
    parser.add_argument("--standby", action="store_true",
                        help="distributed mode: pair every shard with a "
                             "hot standby that replays one checkpoint "
                             "behind, so a killed primary is promoted "
                             "over, not respawned")
    parser.add_argument("--kills", type=_positive_int, default=2,
                        help="process kills in the seeded chaos plan "
                             "under --processes --chaos (default: 2)")
    parser.add_argument("--items", type=_positive_int, default=200,
                        help="work items in the stream (default: 200)")
    parser.add_argument("--seed", type=int, default=1,
                        help="stream and chaos seed (default: 1)")
    parser.add_argument("--queue-capacity", type=_positive_int, default=8,
                        help="per-worker admission queue depth (default: 8)")
    parser.add_argument("--arrivals-per-tick", type=_positive_int, default=4,
                        help="items offered per supervisor tick (default: 4)")
    parser.add_argument("--batch", type=_positive_int, default=2,
                        help="items each worker processes per tick "
                             "(default: 2)")
    parser.add_argument("--checkpoint-every", type=_positive_int, default=16,
                        help="processed items between worker checkpoints "
                             "(default: 16)")
    parser.add_argument("--max-restarts", type=_positive_int, default=5,
                        help="restarts before a worker fails permanently "
                             "(default: 5)")
    parser.add_argument("--no-shed", action="store_true",
                        help="disable priority load shedding (full queues "
                             "always reject)")
    parser.add_argument("--chaos", action="store_true",
                        help="inject a seeded per-worker fault plan and "
                             "exercise restart-from-snapshot")
    parser.add_argument("--chaos-faults", type=_positive_int, default=6,
                        help="faults per worker plan under --chaos "
                             "(default: 6)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable farm report")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a merged multi-machine Perfetto trace: "
                             "one process per worker plus the supervisor "
                             "track (shed/restart/escalation instants)")
    parser.add_argument("--forensics-dir", default=None, metavar="DIR",
                        help="write each escalation's forensics bundle "
                             "into DIR (created if missing)")
    parser.add_argument("--lineage", default=None, metavar="PATH",
                        help="distributed mode: trace causal lineage "
                             "end to end and write the stitched DAG as "
                             "canonical JSON (query it with `repro why`)")
    parser.add_argument("--recorder-capacity", type=_positive_int,
                        default=64,
                        help="flight-recorder ring entries per worker "
                             "(default: 64)")
    parser.add_argument("--no-recorder", action="store_true",
                        help="do not attach per-worker flight recorders")
    parser.add_argument("--sample-every", type=_positive_int, default=5,
                        help="supervisor ticks between farm samples "
                             "(default: 5)")
    parser.add_argument("--samples", default=None, metavar="PATH",
                        help="write the sampler time series (CSV when PATH "
                             "ends in .csv, JSON otherwise)")
    parser.add_argument("--dashboard", action="store_true",
                        help="render the farm dashboard (sampler "
                             "sparklines + worker states)")
    args = parser.parse_args(argv)

    from repro.fault import FaultInjector, FaultPlan, FaultSurface, \
        MachineGuard
    from repro.fault.model import TEP_FAIL, TEP_RUNAWAY
    from repro.obs import FarmSampler, FlightRecorder, MetricsRegistry, \
        Tracer, metrics_summary, render_dashboard, write_forensics_bundle, \
        write_merged_chrome_trace
    from repro.resil import RestartPolicy, Supervisor, generate_event_stream

    try:
        chart_text, routine_text = _load_sources(args.project, args.routines)
        # fail on an unwritable trace destination now, not after the soak
        if args.trace is not None:
            with open(args.trace, "a"):
                pass
        if args.lineage is not None:
            with open(args.lineage, "a"):
                pass
        if args.forensics_dir is not None:
            os.makedirs(args.forensics_dir, exist_ok=True)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chart = parse_chart(chart_text)
    system = _build_for_simulation(chart, routine_text, args)

    if args.processes is not None:
        return _run_serve_distributed(args, chart, system, out)
    if args.lineage is not None:
        print("error: --lineage requires --processes (cross-process farm "
              "lineage)", file=sys.stderr)
        return 2

    injector_factory = None
    if args.chaos:
        import random

        surface = FaultSurface.from_system(system)
        horizon = max(10, args.items // args.workers)

        def injector_factory(worker_index: int):
            rng = random.Random(args.seed * 6271 + worker_index)
            plan = FaultPlan.generate(
                rng, surface, [TEP_RUNAWAY, TEP_FAIL],
                n_faults=args.chaos_faults, horizon=horizon)
            return FaultInjector(plan)

    def guard_factory():
        # a tight retry budget keeps the chaos soak short: two consecutive
        # runaway bites already escalate to the supervisor
        return MachineGuard(max_retries=1, escalate_unrecoverable=True)

    recorder_factory = None
    if not args.no_recorder:
        def recorder_factory(worker_index: int):
            return FlightRecorder(capacity=args.recorder_capacity)

    tracer_factory = None
    if args.trace is not None:
        def tracer_factory(worker_index: int):
            return Tracer()

    sampler = FarmSampler(every=args.sample_every)
    metrics = MetricsRegistry()
    supervisor = Supervisor.for_system(
        system,
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        policy=RestartPolicy(max_restarts=args.max_restarts,
                             checkpoint_every=args.checkpoint_every),
        shed_enabled=not args.no_shed,
        guard_factory=guard_factory,
        injector_factory=injector_factory,
        tracer_factory=tracer_factory,
        recorder_factory=recorder_factory,
        metrics=metrics, sampler=sampler)
    stream = generate_event_stream(system.chart.events, args.items,
                                   seed=args.seed)
    report = supervisor.run(stream,
                            arrivals_per_tick=args.arrivals_per_tick,
                            batch_per_worker=args.batch)
    violations = report.conservation()
    violations += sampler.conservation()

    bundle_paths: List[str] = []
    if args.forensics_dir is not None:
        for index, bundle in enumerate(supervisor.forensics_bundles()):
            name = f"bundle-{index:03d}-{bundle.get('worker') or 'farm'}.json"
            path = os.path.join(args.forensics_dir, name)
            write_forensics_bundle(bundle, path)
            bundle_paths.append(path)
    if args.trace is not None:
        write_merged_chrome_trace(supervisor.machine_tracers(), args.trace,
                                  supervisor_events=report.timeline,
                                  metrics=metrics,
                                  dropped_events=report.timeline_dropped)
    if args.samples is not None:
        if args.samples.endswith(".csv"):
            sampler.write_csv(args.samples)
        else:
            sampler.write_json(args.samples)

    if args.json:
        json.dump({
            "chart": chart.name,
            "architecture": system.arch.describe(),
            "farm": report.to_json(),
            "samples": sampler.to_json(),
            "metrics": metrics.collect(),
        }, out, indent=2)
        print(file=out)
        return 1 if violations else 0
    print(f"chart {chart.name!r} on {system.arch.describe()}: "
          f"{args.workers} worker(s), {args.items} item(s), "
          f"seed {args.seed}"
          + (", chaos on" if args.chaos else ""), file=out)
    print(file=out)
    print(report.render(), file=out)
    print(file=out)
    print(metrics_summary(metrics), file=out)
    if args.dashboard:
        print(file=out)
        print(render_dashboard(supervisor, sampler), file=out)
    for path in bundle_paths:
        print(f"wrote forensics bundle {path}", file=out)
    if args.trace is not None:
        print(f"wrote {args.trace}: merged trace of "
              f"{len(supervisor.machine_tracers())} machine(s) + "
              f"supervisor track ({len(report.timeline)} instant(s))",
              file=out)
    if args.samples is not None:
        print(f"wrote {args.samples}: {len(sampler)} sample(s)", file=out)
    if violations:
        for problem in violations:
            print(f"conservation violation: {problem}", file=sys.stderr)
    return 1 if violations else 0


def _run_serve_distributed(args, chart, system, out) -> int:
    """``repro serve --processes N``: the multi-process sharded farm.

    Output is deliberately deterministic for a fixed seed (canonical key
    order, no wall-clock fields), so CI can ``cmp`` two runs byte for
    byte.
    """
    from repro.fault.model import generate_kill_plan
    from repro.obs import FarmLineage, ShardAggregator, dag_flow_events, \
        write_merged_chrome_trace
    from repro.obs.export import FIRST_MACHINE_PID
    from repro.resil import RestartPolicy, generate_event_stream
    from repro.resil.shardfarm import ShardConfig, ShardFarmError, \
        ShardSupervisor

    lineage = FarmLineage() if args.lineage is not None else None
    kill_plan = []
    if args.chaos:
        # land the kills while the stream is still flowing
        active_ticks = max(4, args.items // max(1, args.arrivals_per_tick))
        kill_plan = generate_kill_plan(
            args.processes, args.kills, seed=args.seed,
            max_tick=max(4, active_ticks // 2),
            standby_fraction=0.25 if args.standby else 0.0)
    aggregator = ShardAggregator()
    config = ShardConfig(
        queue_capacity=args.queue_capacity,
        shed_enabled=not args.no_shed,
        batch=args.batch,
        checkpoint_every=args.checkpoint_every,
        sample_every=args.sample_every,
        lineage=lineage is not None)
    policy = RestartPolicy(
        max_restarts=args.max_restarts,
        checkpoint_every=args.checkpoint_every,
        # seeded jitter desynchronizes simultaneous respawns without
        # costing two-run determinism
        jitter_ticks=2, jitter_seed=args.seed)
    supervisor = ShardSupervisor(
        system, n_shards=args.processes, config=config, policy=policy,
        standby=args.standby, kill_plan=kill_plan, aggregator=aggregator,
        lineage=lineage)
    stream = generate_event_stream(system.chart.events, args.items,
                                   seed=args.seed)
    try:
        report = supervisor.run(stream,
                                arrivals_per_tick=args.arrivals_per_tick)
    except ShardFarmError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    violations = report.conservation() + aggregator.conservation()
    if lineage is not None:
        violations += lineage.conservation()
        with open(args.lineage, "w") as handle:
            handle.write(lineage.dumps())
            handle.write("\n")

    if args.trace is not None:
        # no per-machine tracers cross the process boundary; the merged
        # trace carries the supervisor track (kills, promotions,
        # respawns, sheds) — plus, with --lineage, flow arrows from the
        # stitched causal DAG, placed on each shard's pid track
        flows = None
        if lineage is not None:
            pids = {shard.name: FIRST_MACHINE_PID + index
                    for index, shard in enumerate(supervisor.shards)}
            flows = dag_flow_events(lineage.dag, pids=pids)
        write_merged_chrome_trace({}, args.trace,
                                  supervisor_events=report.timeline,
                                  dropped_events=report.timeline_dropped,
                                  flows=flows)
    if args.samples is not None:
        aggregator.write_json(args.samples)

    if args.json:
        document = {
            "chart": chart.name,
            "architecture": system.arch.describe(),
            "farm": report.to_json(),
            "samples": aggregator.to_json(),
        }
        if lineage is not None:
            document["lineage"] = {
                "nodes": len(lineage.dag.nodes),
                "edges": len(lineage.dag.edges),
                "conservation_violations": lineage.conservation(),
            }
        json.dump(document, out, indent=2, sort_keys=True)
        print(file=out)
        return 1 if violations else 0
    print(f"chart {chart.name!r} on {system.arch.describe()}: "
          f"{args.processes} shard process(es)"
          + (" + hot standbys" if args.standby else "")
          + f", {args.items} item(s), seed {args.seed}"
          + (f", chaos on ({len(kill_plan)} kill(s) planned)"
             if args.chaos else ""), file=out)
    print(file=out)
    print(report.render(), file=out)
    if lineage is not None:
        print(f"wrote {args.lineage}: causal DAG, "
              f"{len(lineage.dag.nodes)} node(s), "
              f"{len(lineage.dag.edges)} edge(s)", file=out)
    if args.trace is not None:
        print(f"wrote {args.trace}: supervisor track "
              f"({len(report.timeline)} instant(s)"
              + (f", {report.timeline_dropped} aged out of the ring"
                 if report.timeline_dropped else "") + ")", file=out)
    if args.samples is not None:
        print(f"wrote {args.samples}: {len(aggregator)} sample(s)",
              file=out)
    if violations:
        for problem in violations:
            print(f"conservation violation: {problem}", file=sys.stderr)
    return 1 if violations else 0


def run_forensics(argv: List[str], out=sys.stdout) -> int:
    """``repro forensics``: pretty-print a flight-recorder bundle."""
    parser = argparse.ArgumentParser(
        prog="repro forensics",
        description="pretty-print a forensics bundle dumped by an "
                    "escalating farm worker (serve --forensics-dir)")
    parser.add_argument("bundle", help="forensics bundle JSON file")
    parser.add_argument("--json", action="store_true",
                        help="re-emit the bundle as canonical JSON")
    args = parser.parse_args(argv)

    from repro.obs import load_forensics_bundle, render_forensics, \
        write_forensics_bundle

    try:
        bundle = load_forensics_bundle(args.bundle)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        write_forensics_bundle(bundle, out)
        print(file=out)
        return 0
    print(render_forensics(bundle), file=out)
    return 0


def run_why(argv: List[str], out=sys.stdout) -> int:
    """``repro why``: render the causal chain through one lineage node.

    Output is deterministic — sorted ancestors/descendants, canonical
    JSON — so two same-seed farm runs answer byte-identically.  Exit
    status 2 names close matches when the node id is unknown.
    """
    parser = argparse.ArgumentParser(
        prog="repro why",
        description="render the end-to-end causal chain (injection -> "
                    "latch -> dispatch -> raise -> output) for a node of "
                    "a lineage DAG written by serve --lineage")
    parser.add_argument("dag", help="lineage DAG JSON file "
                                    "(serve --lineage PATH)")
    parser.add_argument("node", help="node id, e.g. ev:stream:12 or "
                                     "shard0.g0/port:9:t3:464:0")
    parser.add_argument("--find", action="store_true",
                        help="list node ids containing NODE instead of "
                             "rendering a chain")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable chain (canonical JSON)")
    args = parser.parse_args(argv)

    from repro.obs import load_dag, render_chain

    try:
        with open(args.dag) as handle:
            document = json.load(handle)
        dag = load_dag(document)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.find:
        matches = dag.find(args.node)
        for node_id in matches:
            print(node_id, file=out)
        if not matches:
            print(f"error: no lineage node id contains {args.node!r}",
                  file=sys.stderr)
            return 2
        return 0

    if args.node not in dag.nodes:
        candidates = dag.find(args.node)
        hint = ("; close matches: " + ", ".join(candidates[:6])
                if candidates else "")
        print(f"error: no lineage node {args.node!r}{hint}",
              file=sys.stderr)
        return 2
    if args.json:
        json.dump({
            "id": args.node,
            "node": dag.nodes[args.node],
            "parents": [{"id": src, "edge": kind}
                        for src, kind in dag.parents(args.node)],
            "children": [{"id": dst, "edge": kind}
                         for dst, kind in dag.children(args.node)],
            "ancestors": dag.ancestors(args.node),
            "descendants": dag.descendants(args.node),
        }, out, indent=2, sort_keys=True)
        print(file=out)
        return 0
    print(render_chain(dag, args.node), file=out)
    return 0


def run_bench(argv: List[str], out=sys.stdout) -> int:
    """``repro bench``: seeded perf benches + the regression guard.

    Exit status: 0 on success, 1 when ``--compare`` finds a regression,
    2 when inputs cannot be loaded.
    """
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the pinned-seed perf workloads (warmup + "
                    "interleaved median-of-k) and emit a machine-readable "
                    "BENCH document; --compare diffs it against a recorded "
                    "baseline and fails on regressions (see "
                    "docs/OBSERVABILITY.md)")
    parser.add_argument("--workloads", default=None, metavar="NAMES",
                        help="comma-separated subset of smd,elevator,farm "
                             "(default: all)")
    parser.add_argument("--repeats", type=_positive_int, default=3,
                        help="timed repetitions per workload; the median "
                             "is recorded (default: 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup repetitions (default: 1)")
    parser.add_argument("--out", default="BENCH_6.json", metavar="PATH",
                        help="output document (default: BENCH_6.json)")
    parser.add_argument("--profile-top", type=_positive_int, default=10,
                        help="profiler rows kept per table (default: 10)")
    parser.add_argument("--baseline",
                        default="benchmarks/perf_baseline.json",
                        metavar="PATH",
                        help="baseline document for --compare / "
                             "--update-baseline")
    parser.add_argument("--compare", action="store_true",
                        help="diff the run against the baseline; exit 1 "
                             "on any regression")
    parser.add_argument("--candidate", default=None, metavar="PATH",
                        help="with --compare: diff this document instead "
                             "of running the benches")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed wall-clock slowdown fraction "
                             "(default: 0.15)")
    parser.add_argument("--check-wall", choices=["auto", "always", "never"],
                        default="auto",
                        help="wall/throughput comparison: auto gates on "
                             "matching environment fingerprints")
    parser.add_argument("--update-baseline", action="store_true",
                        help="also record this run as the new baseline")
    parser.add_argument("--json", action="store_true",
                        help="print the document to stdout as well")
    args = parser.parse_args(argv)

    from repro.perf import DEFAULT_TOLERANCE, compare_documents, run_bench \
        as run_bench_suite

    workloads = None
    if args.workloads:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]

    if args.candidate is not None and not args.compare:
        print("error: --candidate requires --compare", file=sys.stderr)
        return 2

    if args.candidate is not None:
        try:
            with open(args.candidate) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            document = run_bench_suite(
                workloads=workloads, repeats=args.repeats,
                warmup=args.warmup, profile_top=args.profile_top,
                progress=lambda message: print(message, file=out))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            with open(args.out, "w") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for name, workload in sorted(document["workloads"].items()):
            wall_ms = workload["wall"]["median_ns"] / 1e6
            line = f"  {name}: median {wall_ms:.1f} ms"
            per_cycle = workload["throughput"].get("ns_per_reference_cycle")
            if per_cycle is not None:
                line += f", {per_cycle:.0f} ns/ref-cycle"
            print(line, file=out)
        print(f"wrote {args.out}", file=out)
        if args.update_baseline:
            try:
                with open(args.baseline, "w") as handle:
                    json.dump(document, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(f"baseline written to {args.baseline}", file=out)

    if args.json:
        json.dump(document, out, indent=2, sort_keys=True)
        print(file=out)

    if not args.compare:
        return 0
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    check_wall = {"auto": None, "always": True, "never": False}[
        args.check_wall]
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    report = compare_documents(document, baseline, tolerance=tolerance,
                               check_wall=check_wall)
    print(f"comparing against {args.baseline} "
          f"(tolerance {tolerance * 100:.0f}%):", file=out)
    print(report.render(), file=out)
    return 0 if report.ok else 1


def run_fuzz(argv: List[str], out=sys.stdout) -> int:
    """``repro fuzz``: seeded differential campaigns over generated charts.

    Exit status: 0 when every chart is clean (or, with ``--canary``, when
    the planted mutation is caught and correctly bisected everywhere it
    fits), 1 on any divergence / missed canary, 2 on bad inputs.
    """
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="generate seeded random charts and differentially "
                    "compare the reference interpreter against the machine "
                    "at every improvement-ladder rung, plus snapshot/"
                    "restore and delta-chain continuations; divergences "
                    "are shrunk and bisected to the guilty stage (see "
                    "docs/FUZZING.md)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign seed (default: 1)")
    parser.add_argument("--charts", type=_positive_int, default=50,
                        help="charts to generate (default: 50)")
    parser.add_argument("--cycles", type=_positive_int, default=40,
                        help="event-trace cycles per chart (default: 40)")
    parser.add_argument("--rungs", type=_positive_int, default=None,
                        help="limit the ladder to its first N rungs "
                             "(default: all)")
    parser.add_argument("--canary", default=None, metavar="STAGE",
                        help="plant a retargeting mutation at STAGE in "
                             "every chart where one fits; the campaign "
                             "must catch and bisect it back to STAGE")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking diverging charts")
    parser.add_argument("--bmc", action="store_true",
                        help="cross-check every clean chart with the "
                             "bounded model checker: implied mutual "
                             "exclusions, oracle agreement and a "
                             "counterexample-replay canary")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the canonical JSON report to PATH")
    parser.add_argument("--replay", default=None, metavar="DIR",
                        help="replay the regression corpus under DIR "
                             "instead of running a campaign")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")
    args = parser.parse_args(argv)

    from repro.fuzz import FuzzCampaign, replay_corpus

    if args.replay is not None:
        if not os.path.isdir(args.replay):
            print(f"error: {args.replay!r} is not a directory",
                  file=sys.stderr)
            return 2
        results = replay_corpus(args.replay, cycles_default=args.cycles)
        if args.json:
            json.dump([r.to_json() for r in results], out, indent=2,
                      sort_keys=True)
            print(file=out)
        else:
            for result in results:
                mark = "ok " if result.ok else "FAIL"
                print(f"  {mark} {result.name}: {result.detail}", file=out)
            print(f"{sum(r.ok for r in results)}/{len(results)} corpus "
                  f"entries passed", file=out)
        return 0 if results and all(r.ok for r in results) else 1

    campaign = FuzzCampaign(seed=args.seed, charts=args.charts,
                            cycles=args.cycles, max_rungs=args.rungs,
                            canary_stage=args.canary,
                            shrink=not args.no_shrink, bmc=args.bmc)
    report = campaign.run()
    if args.out is not None:
        try:
            with open(args.out, "w") as handle:
                handle.write(report.dumps())
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(report.dumps(), end="", file=out)
    else:
        print(report.render(), file=out)

    if args.canary is None:
        return 0 if report.clean else 1
    # canary mode: every plantable chart must be caught AND attributed
    caught = [o for o in report.outcomes if o.status == "diverged"]
    wrong = [o for o in caught if o.guilty_stage != args.canary
             or not o.bisect_verified]
    if not caught:
        print("canary: no chart could host the mutation", file=sys.stderr)
        return 1
    if wrong:
        print(f"canary: {len(wrong)} chart(s) bisected to the wrong stage",
              file=sys.stderr)
        return 1
    unexpected = [o for o in report.outcomes
                  if o.status not in ("diverged", "canary-unplantable")]
    if unexpected:
        print(f"canary: {len(unexpected)} chart(s) neither diverged nor "
              f"unplantable", file=sys.stderr)
        return 1
    return 0


def _parse_code_list(text: Optional[str]) -> Tuple[str, ...]:
    if not text:
        return ()
    return tuple(code.strip() for code in text.split(",") if code.strip())


def _lint_workload(name: str):
    """(chart, routine text, arch, specialize, storage_map, system, label)
    for a shipped workload under its blessed architecture."""
    if name == "smd":
        from repro.workloads import (
            SMD_MUTUAL_EXCLUSIONS,
            SMD_ROUTINES,
            smd_chart,
        )

        arch = MD16_TEP.with_(n_teps=2,
                              mutual_exclusions=SMD_MUTUAL_EXCLUSIONS,
                              microcode_optimized=True)
        return smd_chart(), SMD_ROUTINES, arch, True, None, None, "smd"
    from repro.workloads.elevator import (
        ELEVATOR_MUTUAL_EXCLUSIONS,
        ELEVATOR_ROUTINES,
        elevator_chart,
    )

    improved = Improver(elevator_chart(), ELEVATOR_ROUTINES,
                        initial_arch=MD16_TEP,
                        mutual_exclusions=ELEVATOR_MUTUAL_EXCLUSIONS,
                        max_teps=3).run()
    system = improved.final
    return (elevator_chart(), ELEVATOR_ROUTINES, system.arch, True,
            system.storage_map, system, "elevator")


def run_lint(argv: List[str], out=sys.stdout) -> int:
    """``repro lint``: cross-layer static analysis with stable codes.

    Exit status: 0 clean (warnings allowed), 1 when any error-severity
    diagnostic survives, 2 when the inputs cannot be loaded or the chart
    does not parse.
    """
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="statically analyze a chart + routines: determinism "
                    "conflicts, AND-region races, action dataflow, WCET "
                    "budgets and SLA/TAT invariants (see docs/ANALYSIS.md)")
    parser.add_argument("project", nargs="?", default=None,
                        help="project directory (one *.sc + one *.c) or a "
                             "chart file followed by a routine file")
    parser.add_argument("routines", nargs="?", default=None,
                        help="routine file (when PROJECT is a chart file)")
    parser.add_argument("--workload", choices=["smd", "elevator"],
                        help="lint a shipped workload under its blessed "
                             "architecture instead of reading files")
    parser.add_argument("--arch", choices=sorted(_ARCHS),
                        help="architecture (default: auto-select)")
    parser.add_argument("--teps", type=_positive_int, default=None,
                        help="number of TEPs (default: 2 for the SMD chart)")
    parser.add_argument("--optimize", action="store_true",
                        help="peephole + constant-argument specialization")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="output format (default: text)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--suppress", default=None, metavar="CODES",
                        help="comma-separated diagnostic codes to drop")
    parser.add_argument("--enable", default=None, metavar="CODES",
                        help="comma-separated default-suppressed codes to "
                             "re-enable (e.g. PSC202)")
    args = parser.parse_args(argv)

    from repro.analysis import (
        Diagnostic,
        Severity,
        SourceLocation,
        known_code,
        lint_system,
        render_json,
        render_sarif,
        render_text,
    )
    from repro.action.check import CheckError
    from repro.action.parser import ActionParseError
    from repro.statechart.model import ChartError
    from repro.statechart.parser import ParseError

    for code in (_parse_code_list(args.suppress)
                 + _parse_code_list(args.enable)):
        if not known_code(code):
            print(f"error: unknown diagnostic code {code!r}", file=out)
            return 2

    storage_map = system = None
    if args.workload is not None:
        (chart, routine_text, arch, specialize, storage_map, system,
         label) = _lint_workload(args.workload)
        chart_path, source_path = f"{label}.sc", f"{label}.c"
    else:
        if args.project is None:
            parser.error("PROJECT or --workload is required")
        try:
            chart_path, source_path = _resolve_paths(args.project,
                                                     args.routines)
            with open(chart_path) as handle:
                chart_text = handle.read()
            with open(source_path) as handle:
                routine_text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            chart = parse_chart(chart_text)
        except (ParseError, ChartError) as exc:
            diagnostic = Diagnostic(
                code="PSC100", severity=Severity.ERROR,
                message=f"chart does not parse: {exc}",
                location=SourceLocation(file=chart_path,
                                        line=getattr(exc, "line", None)))
            print(render_text([diagnostic], header=chart_path), file=out,
                  end="")
            return 2
        # architecture selection parses the routines before lint_system
        # gets a chance to collect PSC301s; degrade to the same shape
        try:
            arch, specialize = _arch_for_chart(chart, routine_text, args)
        except (ActionParseError, CheckError) as exc:
            print(render_text([_routine_error(exc, source_path)],
                              header=chart_path), file=out, end="")
            return 2

    result = lint_system(
        chart, routine_text, arch,
        specialize=specialize, storage_map=storage_map, system=system,
        chart_path=chart_path, source_path=source_path,
        suppress=_parse_code_list(args.suppress),
        enable=_parse_code_list(args.enable))

    renderer = {"text": lambda d: render_text(d, header=chart_path),
                "json": render_json,
                "sarif": render_sarif}[args.format]
    report = renderer(result.diagnostics)
    if args.out is not None:
        try:
            with open(args.out, "w") as handle:
                handle.write(report)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}: {len(result.diagnostics)} diagnostic(s), "
              f"{result.errors} error(s)", file=out)
    else:
        print(report, file=out, end="" if report.endswith("\n") else "\n")
    return 1 if result.has_errors else 0


def run_check(argv: List[str], out=sys.stdout) -> int:
    """``repro check``: bounded model checking on the enable-product algebra.

    Explores the chart's configuration space with the machine's step
    semantics, decides the declared safety/deadline properties within the
    bound and replays every counterexample on the real machine before
    reporting it (see docs/CHECKING.md).

    Exit status: 0 when every property is proved, 1 when a property is
    violated (with a replaying witness), 2 when the inputs or properties
    cannot be loaded, 3 when the bound was exhausted before a verdict.
    """
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="bounded model checker: proves `never`/`always reach`/"
                    "`deadline` properties over every reachable "
                    "configuration, or produces a machine-replayable "
                    "counterexample (see docs/CHECKING.md)")
    parser.add_argument("project", nargs="?", default=None,
                        help="project directory (one *.sc + one *.c) or a "
                             "chart file followed by a routine file")
    parser.add_argument("routines", nargs="?", default=None,
                        help="routine file (when PROJECT is a chart file)")
    parser.add_argument("--workload", choices=["smd", "elevator"],
                        help="check a shipped workload (with its shipped "
                             "properties) instead of reading files")
    parser.add_argument("--properties", default=None, metavar="FILE",
                        help="sidecar property file (one property per "
                             "line); chart-embedded `property` declarations "
                             "are always checked too")
    parser.add_argument("--depth", type=_positive_int, default=40,
                        help="exploration depth bound in configuration "
                             "cycles (default: 40)")
    parser.add_argument("--max-states", type=_positive_int, default=20000,
                        help="state budget for the exploration "
                             "(default: 20000)")
    parser.add_argument("--arch", choices=sorted(_ARCHS),
                        help="architecture (default: auto-select)")
    parser.add_argument("--teps", type=_positive_int, default=None,
                        help="number of TEPs (default: 2 for the SMD chart)")
    parser.add_argument("--optimize", action="store_true",
                        help="peephole + constant-argument specialization")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="output format (default: text)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--witness-dir", default=None, metavar="DIR",
                        help="write <label>.pN.witness.json + forensics "
                             "bundles for every confirmed violation")
    parser.add_argument("--suppress", default=None, metavar="CODES",
                        help="comma-separated diagnostic codes to drop")
    parser.add_argument("--enable", default=None, metavar="CODES",
                        help="comma-separated default-suppressed codes to "
                             "re-enable")
    args = parser.parse_args(argv)

    from repro.analysis import (
        Diagnostic,
        Severity,
        SourceLocation,
        known_code,
        render_json,
        render_sarif,
        render_text,
    )
    from repro.action.check import CheckError
    from repro.action.parser import ActionParseError
    from repro.analysis.bmc import check_system
    from repro.statechart.model import ChartError
    from repro.statechart.parser import ParseError

    for code in (_parse_code_list(args.suppress)
                 + _parse_code_list(args.enable)):
        if not known_code(code):
            print(f"error: unknown diagnostic code {code!r}", file=out)
            return 2

    properties_text = properties_path = None
    if args.properties is not None:
        try:
            with open(args.properties) as handle:
                properties_text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        properties_path = args.properties

    if args.workload is not None:
        (chart, routine_text, arch, specialize, _storage_map, system,
         label) = _lint_workload(args.workload)
        chart_path = f"{label}.sc"
        if system is None:
            system = build_system(chart, routine_text, arch,
                                  specialize=specialize)
        if properties_text is None:
            if args.workload == "smd":
                from repro.workloads import SMD_PROPERTIES
                properties_text = SMD_PROPERTIES
            else:
                from repro.workloads.elevator import ELEVATOR_PROPERTIES
                properties_text = ELEVATOR_PROPERTIES
    else:
        if args.project is None:
            parser.error("PROJECT or --workload is required")
        try:
            chart_path, source_path = _resolve_paths(args.project,
                                                     args.routines)
            with open(chart_path) as handle:
                chart_text = handle.read()
            with open(source_path) as handle:
                routine_text = handle.read()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            chart = parse_chart(chart_text)
        except (ParseError, ChartError) as exc:
            diagnostic = Diagnostic(
                code="PSC100", severity=Severity.ERROR,
                message=f"chart does not parse: {exc}",
                location=SourceLocation(file=chart_path,
                                        line=getattr(exc, "line", None)))
            print(render_text([diagnostic], header=chart_path), file=out,
                  end="")
            return 2
        label = os.path.splitext(os.path.basename(chart_path))[0]
        # building the system parses and checks the routines; a broken
        # routine file is a bad input (exit 2), not a crash
        try:
            arch, specialize = _arch_for_chart(chart, routine_text, args)
            system = build_system(chart, routine_text, arch,
                                  specialize=specialize)
        except (ActionParseError, CheckError) as exc:
            print(render_text([_routine_error(exc, source_path)],
                              header=chart_path), file=out, end="")
            return 2

    result = check_system(
        chart, routine_text, system,
        properties_text=properties_text, properties_path=properties_path,
        depth=args.depth, max_states=args.max_states,
        chart_path=chart_path, witness_dir=args.witness_dir, label=label,
        suppress=_parse_code_list(args.suppress),
        enable=_parse_code_list(args.enable))

    renderer = {"text": lambda d: render_text(d, header=chart_path),
                "json": render_json,
                "sarif": render_sarif}[args.format]
    report = renderer(result.diagnostics)
    if args.out is not None:
        try:
            with open(args.out, "w") as handle:
                handle.write(report)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}: {len(result.verdicts)} propert"
              f"{'y' if len(result.verdicts) == 1 else 'ies'}, "
              f"{result.errors} error(s)", file=out)
    else:
        print(report, file=out, end="" if report.endswith("\n") else "\n")
    if result.truncation == "property errors":
        return 2
    if result.violated:
        return 1
    if result.undecided:
        return 3
    return 0


def run(argv: Optional[List[str]] = None, out=sys.stdout) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        return run_lint(argv[1:], out)
    if argv and argv[0] == "check":
        return run_check(argv[1:], out)
    if argv and argv[0] == "trace":
        return run_trace(argv[1:], out)
    if argv and argv[0] == "stats":
        return run_stats(argv[1:], out)
    if argv and argv[0] == "faults":
        return run_faults(argv[1:], out)
    if argv and argv[0] == "serve":
        return run_serve(argv[1:], out)
    if argv and argv[0] == "forensics":
        return run_forensics(argv[1:], out)
    if argv and argv[0] == "why":
        return run_why(argv[1:], out)
    if argv and argv[0] == "bench":
        return run_bench(argv[1:], out)
    if argv and argv[0] == "fuzz":
        return run_fuzz(argv[1:], out)
    args = build_argument_parser().parse_args(argv)

    try:
        with open(args.chart) as handle:
            chart_text = handle.read()
        with open(args.routines) as handle:
            routine_text = handle.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    chart = parse_chart(chart_text)

    improvement_profile = None
    if args.improve:
        improver = Improver(chart, routine_text)
        result = improver.run()
        system = result.final
        improvement_profile = result.profile
        if not args.json:
            print("improvement trajectory:", file=out)
            for step in result.steps:
                print(f"  {step.rung:20s} area {step.area_clbs:5d} "
                      f"violations {step.n_violations}", file=out)
            print(file=out)
            print(improvement_profile_report(improvement_profile), file=out)
    else:
        if args.arch is not None:
            arch = _ARCHS[args.arch]
        else:
            arch = select_initial_architecture(chart, routine_text)
        if args.teps is not None:
            arch = arch.with_(n_teps=args.teps)
        if args.optimize:
            arch = arch.with_(microcode_optimized=True)
        system = build_system(chart, routine_text, arch,
                              specialize=args.optimize)

    violations = system.violations()

    if args.json:
        summary = {
            "chart": chart.name,
            "architecture": system.arch.describe(),
            "area_clbs": system.area().total_clbs,
            "device": system.area().device().name,
            "critical_paths": system.critical_paths(),
            "violations": [v.describe() for v in violations],
            "routine_wcets": {name: wcet
                              for name, wcet in system.routine_wcets().items()
                              if not name.startswith("__")},
        }
        if improvement_profile is not None:
            summary["improvement_profile"] = improvement_profile.to_json()
        json.dump(summary, out, indent=2)
        print(file=out)
    else:
        print(f"chart {chart.name!r}: {len(chart.states)} states, "
              f"{len(chart.transitions)} transitions", file=out)
        print(f"architecture: {system.arch.describe()}", file=out)
        print(file=out)
        print(table2_report(chart), file=out)
        print(file=out)
        print(table3_report(system.validator.all_cycles()), file=out)
        print(file=out)
        if violations:
            print("timing violations:", file=out)
            for violation in violations:
                print(f"  {violation.describe()}", file=out)
        else:
            print("all timing constraints met", file=out)
        print(file=out)
        print(system.area().report(), file=out)

    for kind in args.emit:
        print(file=out)
        print(f"---- {kind} ----", file=out)
        if kind == "blif":
            from repro.sla import emit_blif
            print(emit_blif(system.pla), file=out)
        elif kind == "vhdl":
            from repro.hw import emit_sla_vhdl
            print(emit_sla_vhdl(
                "sla", system.pla.layout.input_names(),
                system.pla.output_names(),
                system.pla.as_products_by_output()), file=out)
        elif kind == "asm":
            from repro.isa import emit_text
            print(emit_text(system.compiled.flat_instructions()), file=out)
        elif kind == "dot":
            from repro.statechart import TransitionGraph
            print(TransitionGraph(chart).to_dot(), file=out)

    if args.floorplan:
        from repro.hw import floorplan
        print(file=out)
        print(floorplan(system.area()).ascii_map(), file=out)

    return 1 if violations else 0


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
