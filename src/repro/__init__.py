"""Reproduction of *PSCP: A Scalable Parallel ASIP Architecture for Reactive
Systems* (Pyttel, Sedlmeier, Veith — DATE 1998).

The package implements the paper's complete codesign flow:

* :mod:`repro.statechart` — extended statecharts (model, textual format,
  semantics, graph views);
* :mod:`repro.action` — the intermediate C dialect for transition routines;
* :mod:`repro.isa` — the TEP instruction set, assembler, microcode,
  code generator, WCET analysis and code optimizations;
* :mod:`repro.hw` — the hardware component library, FPGA device model,
  area estimation and floorplanning;
* :mod:`repro.sla` — Statechart Logic Array synthesis (state encoding,
  PLA generation, BLIF/VHDL emission);
* :mod:`repro.pscp` — the cycle-level PSCP machine simulator (scheduler,
  TEPs, configuration register, condition caches, ports);
* :mod:`repro.flow` — the codesign flow: static timing validation and the
  iterative architecture/instruction improvement loop;
* :mod:`repro.workloads` — the SMD pickup-head case study (Figs. 5-7) and
  synthetic chart generators.
"""

__version__ = "1.0.0"

__all__ = [
    "statechart", "action", "isa", "hw", "sla", "pscp", "flow", "workloads",
]
